#include "sim/executor.h"

#include <algorithm>
#include <functional>

#include "ir/verifier.h"
#include "support/check.h"

namespace graphene
{
namespace sim
{

namespace
{

/** Per-level linear indices for canonical value @p v (innermost level
 *  varies fastest; colexicographic within each level). */
std::vector<int64_t>
levelIndicesFor(const TensorView &view, int64_t v)
{
    std::vector<int64_t> idx(view.numLevels());
    for (int l = view.numLevels() - 1; l >= 0; --l) {
        const int64_t size = view.level(l).size();
        idx[l] = v % size;
        v /= size;
    }
    return idx;
}

} // namespace

struct Executor::BlockCtx
{
    int64_t bid = 0;
    int64_t blockSize = 0;
    bool timingMode = false;
    Sanitizer *san = nullptr; // non-null iff sanitizing this block
    std::map<std::string, Buffer> shared;
    // regs[tid][bufferName]
    std::vector<std::map<std::string, Buffer>> regs;
    std::map<std::string, int64_t> loopVars;
    std::vector<ExprPtr> predicates; // tid-dependent guards
    CostStats stats;
    /** Per-statement attribution sink (null when not profiling). */
    std::map<int64_t, StmtCost> *byStmt = nullptr;
    /** Worst smem conflict degree within the current leaf spec. */
    double leafMaxConflict = 1.0;

    /** Variable lookup for a specific thread. */
    std::function<int64_t(const std::string &)>
    lookupFor(int64_t tid) const
    {
        return [this, tid](const std::string &name) -> int64_t {
            if (name == "tid")
                return tid;
            if (name == "bid")
                return bid;
            auto it = loopVars.find(name);
            GRAPHENE_CHECK(it != loopVars.end())
                << "unbound variable '" << name << "' in simulation";
            return it->second;
        };
    }

    bool
    active(int64_t tid) const
    {
        for (const auto &p : predicates)
            if (p->eval(lookupFor(tid)) == 0)
                return false;
        return true;
    }
};

Executor::Executor(const GpuArch &arch, DeviceMemory &memory)
    : arch_(arch), registry_(AtomicSpecRegistry::forArch(arch)),
      memory_(memory)
{}

void
Executor::setSanitizerMode(SanitizerMode mode)
{
    if (mode == SanitizerMode::Off)
        sanitizer_.reset();
    else
        sanitizer_ = std::make_unique<Sanitizer>(mode);
    lastSanitizerReport_ = SanitizerReport();
    lastSanitizerReport_.mode = mode;
}

SanitizerMode
Executor::sanitizerMode() const
{
    return sanitizer_ ? sanitizer_->mode() : SanitizerMode::Off;
}

const SanitizerReport &
Executor::sanitizerReport() const
{
    return lastSanitizerReport_;
}

void
Executor::prepareSanitizer(const Kernel &kernel)
{
    if (!sanitizer_)
        return;
    numberSyncStmts(kernel.body());
    sanitizer_->beginKernel();
}

void
Executor::checkParams(const Kernel &kernel) const
{
    for (const auto &p : kernel.params()) {
        GRAPHENE_CHECK(memory_.contains(p.buffer()))
            << "kernel parameter '" << p.buffer()
            << "' has no device buffer";
        const Buffer &buf = memory_.at(p.buffer());
        GRAPHENE_CHECK(buf.size() >= p.outer().cosize())
            << "device buffer '" << p.buffer() << "' holds " << buf.size()
            << " elements but the kernel views " << p.outer().cosize();
    }
}

void
Executor::run(const Kernel &kernel)
{
    verifyKernelOrThrow(kernel);
    checkParams(kernel);
    prepareSanitizer(kernel);
    for (int64_t bid = 0; bid < kernel.gridSize(); ++bid)
        execBlock(kernel, bid, /*timingMode=*/false, nullptr);
    if (sanitizer_)
        lastSanitizerReport_ = sanitizer_->takeReport();
}

KernelProfile
Executor::profile(const Kernel &kernel)
{
    verifyKernelOrThrow(kernel);
    checkParams(kernel);
    KernelProfile prof;
    prof.stmtCount = numberStmts(kernel.body());
    execBlock(kernel, 0, /*timingMode=*/true, &prof.perBlock,
              &prof.byStmt);
    prof.blocksExecuted = 1;
    prof.timing = estimateKernelTiming(arch_, prof.perBlock,
                                       kernel.gridSize(),
                                       kernel.blockSize(),
                                       kernel.sharedMemoryBytes(),
                                       kernel.dramBytesHint());
    // Only block 0 ran (with extrapolated loops): whatever the kernel
    // wrote is garbage.  Poison it so misuse fails loudly.
    for (size_t i = 0; i < kernel.params().size(); ++i)
        if (!kernel.paramIsConst(static_cast<int>(i)))
            memory_.at(kernel.params()[i].buffer()).setPoisoned(true);
    return prof;
}

KernelProfile
Executor::runAndProfile(const Kernel &kernel)
{
    verifyKernelOrThrow(kernel);
    checkParams(kernel);
    KernelProfile prof;
    prof.stmtCount = numberStmts(kernel.body());
    prepareSanitizer(kernel);
    for (int64_t bid = 0; bid < kernel.gridSize(); ++bid)
        execBlock(kernel, bid, /*timingMode=*/false,
                  bid == 0 ? &prof.perBlock : nullptr,
                  bid == 0 ? &prof.byStmt : nullptr);
    if (sanitizer_) {
        lastSanitizerReport_ = sanitizer_->takeReport();
        prof.sanitizer = lastSanitizerReport_;
    }
    prof.blocksExecuted = kernel.gridSize();
    prof.timing = estimateKernelTiming(arch_, prof.perBlock,
                                       kernel.gridSize(),
                                       kernel.blockSize(),
                                       kernel.sharedMemoryBytes(),
                                       kernel.dramBytesHint());
    return prof;
}

void
Executor::execBlock(const Kernel &kernel, int64_t bid, bool timingMode,
                    CostStats *stats, std::map<int64_t, StmtCost> *byStmt)
{
    BlockCtx ctx;
    ctx.bid = bid;
    ctx.blockSize = kernel.blockSize();
    ctx.timingMode = timingMode;
    ctx.byStmt = byStmt;
    if (!timingMode && sanitizer_) {
        ctx.san = sanitizer_.get();
        ctx.san->beginBlock(bid);
    }
    ctx.regs.resize(static_cast<size_t>(ctx.blockSize));
    execStmts(kernel.body(), ctx);
    if (stats)
        *stats = ctx.stats;
}

void
Executor::execStmts(const std::vector<StmtPtr> &stmts, BlockCtx &ctx)
{
    for (const auto &s : stmts)
        execStmt(*s, ctx);
}

void
Executor::execStmt(const Stmt &stmt, BlockCtx &ctx)
{
    switch (stmt.kind) {
      case StmtKind::For: {
        const int64_t trips = (stmt.end - stmt.begin + stmt.step - 1)
            / stmt.step;
        if (ctx.timingMode && stmt.uniformCost && trips >= 4) {
            // Execute two iterations; extrapolate the steady-state cost
            // of the second across the remaining trips.
            ctx.loopVars[stmt.loopVar] = stmt.begin;
            const CostStats before = ctx.stats;
            execStmts(stmt.body, ctx);
            ctx.loopVars[stmt.loopVar] = stmt.begin + stmt.step;
            const CostStats afterFirst = ctx.stats;
            // Snapshot the attribution so the second iteration's
            // per-statement share can be extrapolated too.
            std::map<int64_t, StmtCost> bySnap;
            if (ctx.byStmt)
                bySnap = *ctx.byStmt;
            execStmts(stmt.body, ctx);
            const CostStats second = ctx.stats - afterFirst;
            (void)before;
            const double extra = static_cast<double>(trips - 2);
            ctx.stats += second.scaled(extra);
            if (ctx.byStmt) {
                for (auto &[id, sc] : *ctx.byStmt) {
                    auto prev = bySnap.find(id);
                    const StmtCost *p =
                        prev == bySnap.end() ? nullptr : &prev->second;
                    if (p && p->visits == sc.visits)
                        continue; // not touched by the second iteration
                    const CostStats delta =
                        p ? sc.stats - p->stats : sc.stats;
                    sc.stats += delta.scaled(extra);
                    sc.extrapolated = true;
                }
            }
            ctx.loopVars.erase(stmt.loopVar);
            return;
        }
        for (int64_t v = stmt.begin; v < stmt.end; v += stmt.step) {
            ctx.loopVars[stmt.loopVar] = v;
            execStmts(stmt.body, ctx);
        }
        ctx.loopVars.erase(stmt.loopVar);
        return;
      }
      case StmtKind::If: {
        if (exprUsesVar(stmt.cond, "tid")) {
            // Thread-dependent predication: guard leaf specs.
            ctx.predicates.push_back(stmt.cond);
            execStmts(stmt.body, ctx);
            ctx.predicates.pop_back();
            if (!stmt.elseBody.empty()) {
                ctx.predicates.push_back(
                    lessThan(stmt.cond, constant(1)));
                execStmts(stmt.elseBody, ctx);
                ctx.predicates.pop_back();
            }
            return;
        }
        const int64_t cond = stmt.cond->eval(ctx.lookupFor(0));
        execStmts(cond != 0 ? stmt.body : stmt.elseBody, ctx);
        return;
      }
      case StmtKind::Sync:
        ctx.stats.syncCount += 1;
        if (ctx.byStmt) {
            StmtCost &sc = (*ctx.byStmt)[stmt.stmtId];
            sc.stats.syncCount += 1;
            sc.visits += 1;
        }
        if (ctx.san)
            ctx.san->onSync(stmt.warpScope, stmt.syncId);
        return;
      case StmtKind::SpecCall:
        if (stmt.spec->isLeaf()) {
            if (ctx.byStmt) {
                const CostStats before = ctx.stats;
                ctx.leafMaxConflict = 1.0;
                execLeafSpec(*stmt.spec, ctx);
                StmtCost &sc = (*ctx.byStmt)[stmt.stmtId];
                sc.stats += ctx.stats - before;
                sc.visits += 1;
                sc.maxSmemConflict = std::max(sc.maxSmemConflict,
                                              ctx.leafMaxConflict);
            } else {
                execLeafSpec(*stmt.spec, ctx);
            }
        } else {
            execStmts(stmt.spec->body(), ctx);
        }
        return;
      case StmtKind::Alloc:
        if (stmt.allocMemory == MemorySpace::SH) {
            ctx.shared[stmt.allocName] =
                Buffer(stmt.allocScalar, stmt.allocCount);
            if (ctx.san)
                ctx.san->onSharedAlloc(stmt.allocName, stmt.allocScalar,
                                       stmt.allocCount);
        } else {
            for (auto &rf : ctx.regs)
                rf[stmt.allocName] = Buffer(stmt.allocScalar,
                                            stmt.allocCount);
        }
        return;
      case StmtKind::Comment:
        return;
    }
}

namespace
{

/** Resolve the backing buffer of a view for a given thread. */
Buffer &
resolveBuffer(const TensorView &view, DeviceMemory &memory,
              std::map<std::string, Buffer> &shared,
              std::vector<std::map<std::string, Buffer>> &regs,
              int64_t tid)
{
    switch (view.memory()) {
      case MemorySpace::GL:
        return memory.at(view.buffer());
      case MemorySpace::SH: {
        auto it = shared.find(view.buffer());
        GRAPHENE_CHECK(it != shared.end())
            << "shared buffer '" << view.buffer() << "' not allocated";
        return it->second;
      }
      case MemorySpace::RF: {
        auto &rf = regs[static_cast<size_t>(tid)];
        auto it = rf.find(view.buffer());
        GRAPHENE_CHECK(it != rf.end())
            << "register buffer '" << view.buffer()
            << "' not allocated for thread " << tid;
        return it->second;
      }
    }
    panic("unknown memory space");
}

} // namespace

void
Executor::execLeafSpec(const Spec &spec, BlockCtx &ctx)
{
    const AtomicSpecInfo &info = registry_.matchOrThrow(spec);
    const int64_t blockSize = ctx.blockSize;

    auto lookup = [&](int64_t tid) { return ctx.lookupFor(tid); };
    auto buffer = [&](const TensorView &v, int64_t tid) -> Buffer & {
        return resolveBuffer(v, memory_, ctx.shared, ctx.regs, tid);
    };
    auto readValues = [&](const TensorView &v, int64_t tid) {
        Buffer &buf = buffer(v, tid);
        const auto lk = lookup(tid);
        const int64_t n = v.totalSize();
        std::vector<double> vals(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
            const int64_t addr =
                v.elementAddress(levelIndicesFor(v, i), lk);
            if (ctx.san &&
                !ctx.san->onAccess(v.memory(), v.buffer(), v.scalar(),
                                   addr, buf.size(), tid,
                                   /*isWrite=*/false)) {
                vals[static_cast<size_t>(i)] = 0.0; // suppressed OOB
                continue;
            }
            vals[static_cast<size_t>(i)] = buf.read(addr);
        }
        return vals;
    };
    auto writeValues = [&](const TensorView &v, int64_t tid,
                           const std::vector<double> &vals) {
        Buffer &buf = buffer(v, tid);
        const auto lk = lookup(tid);
        for (int64_t i = 0; i < v.totalSize(); ++i) {
            const int64_t addr =
                v.elementAddress(levelIndicesFor(v, i), lk);
            if (ctx.san &&
                !ctx.san->onAccess(v.memory(), v.buffer(), v.scalar(),
                                   addr, buf.size(), tid,
                                   /*isWrite=*/true))
                continue; // suppressed OOB write
            buf.write(addr, vals[static_cast<size_t>(i)]);
        }
    };
    /** (byte address, byte width) ranges one thread touches in @p v. */
    auto accessRanges = [&](const TensorView &v, int64_t tid,
                            bool contiguous) {
        const auto lk = lookup(tid);
        const int64_t esize = scalarSizeBytes(v.scalar());
        std::vector<std::pair<int64_t, int64_t>> ranges;
        if (contiguous) {
            const int64_t base =
                v.elementAddress(levelIndicesFor(v, 0), lk);
            ranges.emplace_back(base * esize, v.totalSize() * esize);
        } else {
            for (int64_t i = 0; i < v.totalSize(); ++i)
                ranges.emplace_back(
                    v.elementAddress(levelIndicesFor(v, i), lk) * esize,
                    esize);
        }
        return ranges;
    };
    /** Account one warp-wide memory access on view @p v. */
    auto accountMemAccess = [&](const TensorView &v,
                                const std::vector<int64_t> &lanes,
                                bool isLoad) {
        if (v.memory() == MemorySpace::RF)
            return;
        std::vector<std::pair<int64_t, int64_t>> ranges;
        for (int64_t t : lanes) {
            auto r = accessRanges(v, t, info.requiresContiguous
                                  || v.totalSize() == 1);
            ranges.insert(ranges.end(), r.begin(), r.end());
        }
        double useful = 0;
        for (const auto &[addr, bytes] : ranges)
            useful += static_cast<double>(bytes);
        if (v.memory() == MemorySpace::SH) {
            const int64_t waves = smemWavefronts(ranges, arch_);
            const int64_t ideal = smemIdealWavefronts(ranges, arch_);
            ctx.stats.smemWavefronts += static_cast<double>(waves);
            ctx.stats.smemIdealWavefronts += static_cast<double>(ideal);
            ctx.stats.smemAccesses += 1;
            ctx.leafMaxConflict =
                std::max(ctx.leafMaxConflict,
                         static_cast<double>(waves)
                             / static_cast<double>(ideal));
        } else {
            const int64_t sectors = globalSectors(ranges, arch_);
            ctx.stats.globalSectors += static_cast<double>(sectors);
            ctx.stats.globalAccesses += 1;
            ctx.stats.globalUsefulBytes += useful;
            const double bytes =
                static_cast<double>(sectors) * arch_.sectorBytes;
            if (isLoad)
                ctx.stats.globalLoadBytes += bytes;
            else
                ctx.stats.globalStoreBytes += bytes;
        }
    };
    auto addFlops = [&](double flops) {
        switch (info.pipe) {
          case Pipe::Tensor: ctx.stats.tensorFlops += flops; break;
          case Pipe::Fp16: ctx.stats.fp16Flops += flops; break;
          case Pipe::Sfu: ctx.stats.sfuOps += flops; break;
          default: ctx.stats.fp32Flops += flops; break;
        }
    };

    switch (info.opcode) {
      // ---------------------------------------------- per-thread ops -
      case AtomicOpcode::LdGlobal:
      case AtomicOpcode::StGlobal:
      case AtomicOpcode::LdShared:
      case AtomicOpcode::StShared:
      case AtomicOpcode::MoveReg:
      case AtomicOpcode::CpAsync: {
        const TensorView &src = spec.inputs()[0];
        const TensorView &dst = spec.outputs()[0];
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            std::vector<int64_t> lanes;
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t)
                if (ctx.active(t))
                    lanes.push_back(t);
            if (lanes.empty())
                continue;
            ctx.stats.issueSlots += 1;
            for (int64_t t : lanes)
                writeValues(dst, t, readValues(src, t));
            accountMemAccess(src, lanes, /*isLoad=*/true);
            accountMemAccess(dst, lanes, /*isLoad=*/false);
        }
        return;
      }
      case AtomicOpcode::FmaScalar:
      case AtomicOpcode::Hfma2: {
        const TensorView &a = spec.inputs()[0];
        const TensorView &b = spec.inputs()[1];
        const TensorView &d = spec.outputs()[0];
        int64_t activeCount = 0;
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            std::vector<int64_t> lanes;
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t)
                if (ctx.active(t))
                    lanes.push_back(t);
            if (lanes.empty())
                continue;
            for (int64_t t : lanes) {
                ++activeCount;
                auto av = readValues(a, t);
                auto bv = readValues(b, t);
                auto dv = readValues(d, t);
                for (size_t i = 0; i < dv.size(); ++i)
                    dv[i] += av[i] * bv[i];
                writeValues(d, t, dv);
            }
            ctx.stats.issueSlots += 1;
            // Memory-resident operands (Fig. 8 style) cost accesses;
            // the accumulator is read-modify-write.
            accountMemAccess(a, lanes, /*isLoad=*/true);
            accountMemAccess(b, lanes, /*isLoad=*/true);
            accountMemAccess(d, lanes, /*isLoad=*/true);
            accountMemAccess(d, lanes, /*isLoad=*/false);
        }
        addFlops(static_cast<double>(activeCount) * 2.0
                 * static_cast<double>(info.elemsOut));
        return;
      }
      case AtomicOpcode::UnaryScalar:
      case AtomicOpcode::BinaryScalar:
      case AtomicOpcode::BinaryVector2: {
        const TensorView &out = spec.outputs()[0];
        const bool isBinary = spec.kind() == SpecKind::BinaryPointwise;
        const bool sfu = spec.op() == OpKind::Exp
            || spec.op() == OpKind::Rsqrt || spec.op() == OpKind::Tanh
            || spec.op() == OpKind::Sigmoid || spec.op() == OpKind::Gelu;
        int64_t activeCount = 0;
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            bool any = false;
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t) {
                if (!ctx.active(t))
                    continue;
                any = true;
                ++activeCount;
                auto av = readValues(spec.inputs()[0], t);
                std::vector<double> ov(av.size());
                if (isBinary && !spec.hasScalarOperand()) {
                    auto bv = readValues(spec.inputs()[1], t);
                    for (size_t i = 0; i < av.size(); ++i)
                        ov[i] = applyOp(spec.op(), av[i], bv[i]);
                } else if (isBinary) {
                    for (size_t i = 0; i < av.size(); ++i)
                        ov[i] = applyOp(spec.op(), av[i],
                                        spec.scalarOperand());
                } else {
                    for (size_t i = 0; i < av.size(); ++i)
                        ov[i] = applyOp(spec.op(), av[i]);
                }
                writeValues(out, t, ov);
            }
            if (any)
                ctx.stats.issueSlots += 1;
        }
        const double ops = static_cast<double>(activeCount)
            * static_cast<double>(out.totalSize());
        if (sfu)
            ctx.stats.sfuOps += ops;
        else
            addFlops(ops);
        return;
      }
      case AtomicOpcode::ReduceSerial: {
        const TensorView &in = spec.inputs()[0];
        const TensorView &out = spec.outputs()[0];
        int64_t activeCount = 0;
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            bool any = false;
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t) {
                if (!ctx.active(t))
                    continue;
                any = true;
                ++activeCount;
                auto vals = readValues(in, t);
                double acc = reductionIdentity(spec.op());
                for (double v : vals)
                    acc = applyOp(spec.op(), acc, v);
                writeValues(out, t, {acc});
            }
            if (any)
                ctx.stats.issueSlots +=
                    static_cast<double>(in.totalSize()) / 32.0 + 1;
        }
        ctx.stats.fp32Flops += static_cast<double>(activeCount)
            * static_cast<double>(in.totalSize());
        return;
      }
      case AtomicOpcode::InitReg: {
        const TensorView &out = spec.outputs()[0];
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            bool any = false;
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t) {
                if (!ctx.active(t))
                    continue;
                any = true;
                std::vector<double> vals(
                    static_cast<size_t>(out.totalSize()),
                    spec.initValue());
                writeValues(out, t, vals);
            }
            if (any)
                ctx.stats.issueSlots += 1;
        }
        return;
      }
      // -------------------------------------------- warp-collective -
      case AtomicOpcode::ShflSync: {
        const TensorView &in = spec.inputs()[0];
        const TensorView &out = spec.outputs()[0];
        for (int64_t warp = 0; warp + 32 <= blockSize; warp += 32) {
            if (!ctx.active(warp))
                continue;
            std::vector<double> lane(32);
            for (int64_t l = 0; l < 32; ++l)
                lane[static_cast<size_t>(l)] =
                    readValues(in, warp + l)[0];
            for (int64_t l = 0; l < 32; ++l) {
                int64_t srcLane = l;
                switch (spec.shflMode()) {
                  case ShflMode::Bfly: srcLane = l ^ spec.shflArg(); break;
                  case ShflMode::Down:
                    srcLane = l + spec.shflArg();
                    if (srcLane >= 32)
                        srcLane = l;
                    break;
                  case ShflMode::Idx: srcLane = spec.shflArg(); break;
                }
                writeValues(out, warp + l,
                            {lane[static_cast<size_t>(srcLane)]});
            }
            ctx.stats.issueSlots += 1;
        }
        return;
      }
      case AtomicOpcode::Ldmatrix:
      case AtomicOpcode::LdmatrixTrans: {
        const bool trans = info.opcode == AtomicOpcode::LdmatrixTrans;
        const TensorView &src = spec.inputs()[0];
        const TensorView &dst = spec.outputs()[0];
        for (int64_t warp = 0; warp + 32 <= blockSize; warp += 32) {
            if (!ctx.active(warp))
                continue;
            // Phase 1: the four 8x8 matrices; matrix g's row r comes
            // from thread 8g + r's source view (8 contiguous halves).
            double tiles[4][8][8];
            std::vector<std::pair<int64_t, int64_t>> allRanges;
            for (int64_t g = 0; g < 4; ++g) {
                for (int64_t r = 0; r < 8; ++r) {
                    const int64_t t = warp + 8 * g + r;
                    auto row = readValues(src, t);
                    GRAPHENE_ASSERT(row.size() == 8u)
                        << "ldmatrix row must have 8 elements";
                    for (int64_t c = 0; c < 8; ++c)
                        tiles[g][r][c] = row[static_cast<size_t>(c)];
                    auto ranges = accessRanges(src, t, true);
                    allRanges.insert(allRanges.end(), ranges.begin(),
                                     ranges.end());
                }
            }
            // Phase 2: distribute — thread t receives, for register
            // pair g, elements (t/4, 2*(t%4)) and (t/4, 2*(t%4)+1); the
            // .trans variant distributes the transposed matrices.
            for (int64_t l = 0; l < 32; ++l) {
                std::vector<double> vals(8);
                for (int64_t v = 0; v < 8; ++v) {
                    const int64_t g = v / 2;
                    const int64_t r = l / 4;
                    const int64_t c = 2 * (l % 4) + (v % 2);
                    vals[static_cast<size_t>(v)] =
                        trans ? tiles[g][c][r] : tiles[g][r][c];
                }
                writeValues(dst, warp + l, vals);
            }
            ctx.stats.issueSlots += 1;
            // The instruction performs 4 shared-memory phases of 8 rows
            // each; conflicts computed per phase from the row addresses.
            for (int64_t g = 0; g < 4; ++g) {
                std::vector<std::pair<int64_t, int64_t>> phase(
                    allRanges.begin() + g * 8,
                    allRanges.begin() + (g + 1) * 8);
                const int64_t waves = smemWavefronts(phase, arch_);
                const int64_t ideal = smemIdealWavefronts(phase, arch_);
                ctx.stats.smemWavefronts += static_cast<double>(waves);
                ctx.stats.smemIdealWavefronts +=
                    static_cast<double>(ideal);
                ctx.stats.smemAccesses += 1;
                ctx.leafMaxConflict =
                    std::max(ctx.leafMaxConflict,
                             static_cast<double>(waves)
                                 / static_cast<double>(ideal));
            }
        }
        return;
      }
      case AtomicOpcode::MmaM16N8K16:
      case AtomicOpcode::MmaM16N8K8: {
        const bool k16 = info.opcode == AtomicOpcode::MmaM16N8K16;
        const int64_t K = k16 ? 16 : 8;
        const TensorView &aView = spec.inputs()[0];
        const TensorView &bView = spec.inputs()[1];
        const TensorView &dView = spec.outputs()[0];
        for (int64_t warp = 0; warp + 32 <= blockSize; warp += 32) {
            if (!ctx.active(warp))
                continue;
            double A[16][16] = {};
            double B[16][8] = {};
            double D[16][8] = {};
            for (int64_t l = 0; l < 32; ++l) {
                auto av = readValues(aView, warp + l);
                for (int64_t v = 0; v < info.elemsIn0; ++v) {
                    const int64_t m = l / 4 + 8 * (k16 ? (v / 2) % 2
                                                        : v / 2);
                    const int64_t k = 2 * (l % 4) + v % 2
                        + (k16 ? 8 * (v / 4) : 0);
                    A[m][k] = av[static_cast<size_t>(v)];
                }
                auto bv = readValues(bView, warp + l);
                for (int64_t v = 0; v < info.elemsIn1; ++v) {
                    const int64_t k = 2 * (l % 4) + v % 2 + 8 * (v / 2);
                    const int64_t n = l / 4;
                    B[k][n] = bv[static_cast<size_t>(v)];
                }
                auto dv = readValues(dView, warp + l);
                for (int64_t v = 0; v < info.elemsOut; ++v) {
                    const int64_t m = l / 4 + 8 * (v / 2);
                    const int64_t n = 2 * (l % 4) + v % 2;
                    D[m][n] = dv[static_cast<size_t>(v)];
                }
            }
            for (int64_t m = 0; m < 16; ++m)
                for (int64_t n = 0; n < 8; ++n) {
                    double acc = D[m][n];
                    for (int64_t k = 0; k < K; ++k)
                        acc += A[m][k] * B[k][n];
                    D[m][n] = acc;
                }
            for (int64_t l = 0; l < 32; ++l) {
                std::vector<double> dv(
                    static_cast<size_t>(info.elemsOut));
                for (int64_t v = 0; v < info.elemsOut; ++v) {
                    const int64_t m = l / 4 + 8 * (v / 2);
                    const int64_t n = 2 * (l % 4) + v % 2;
                    dv[static_cast<size_t>(v)] = D[m][n];
                }
                writeValues(dView, warp + l, dv);
            }
            ctx.stats.issueSlots += 1;
            ctx.stats.tensorFlops +=
                static_cast<double>(info.flopsPerGroup);
        }
        return;
      }
      case AtomicOpcode::MmaM8N8K4: {
        const TensorView &aView = spec.inputs()[0];
        const TensorView &bView = spec.inputs()[1];
        const TensorView &dView = spec.outputs()[0];
        for (int64_t warp = 0; warp + 32 <= blockSize; warp += 32) {
            if (!ctx.active(warp))
                continue;
            // Four quad-pairs per warp; QP q = lanes {4q..4q+3} and
            // {16+4q..16+4q+3}.
            for (int64_t q = 0; q < 4; ++q) {
                double A[8][4] = {};
                double B[4][8] = {};
                double D[8][8] = {};
                auto lanesOf = [&](int64_t qt) {
                    return warp + 4 * q + (qt % 4) + 16 * (qt / 4);
                };
                for (int64_t qt = 0; qt < 8; ++qt) {
                    const int64_t t = lanesOf(qt);
                    auto av = readValues(aView, t);
                    for (int64_t v = 0; v < 4; ++v)
                        A[qt][v] = av[static_cast<size_t>(v)];
                    auto bv = readValues(bView, t);
                    for (int64_t v = 0; v < 4; ++v)
                        B[v][qt] = bv[static_cast<size_t>(v)];
                    auto dv = readValues(dView, t);
                    for (int64_t v = 0; v < 8; ++v)
                        D[qt][v] = dv[static_cast<size_t>(v)];
                }
                for (int64_t m = 0; m < 8; ++m)
                    for (int64_t n = 0; n < 8; ++n)
                        for (int64_t k = 0; k < 4; ++k)
                            D[m][n] += A[m][k] * B[k][n];
                for (int64_t qt = 0; qt < 8; ++qt) {
                    std::vector<double> dv(8);
                    for (int64_t v = 0; v < 8; ++v)
                        dv[static_cast<size_t>(v)] = D[qt][v];
                    writeValues(dView, lanesOf(qt), dv);
                }
                ctx.stats.tensorFlops +=
                    static_cast<double>(info.flopsPerGroup);
            }
            ctx.stats.issueSlots += 1;
        }
        return;
      }
    }
    panic("unhandled atomic opcode");
}

} // namespace sim
} // namespace graphene
