/**
 * @file
 * Compiled execution plans for the GPU simulator (the "plan compiler").
 *
 * The interpreter re-walks the decomposed IR tree per (block, warp,
 * thread): string-keyed buffer maps, std::function variable lookups,
 * and a full Expr-tree evaluation per memory access.  A Plan lowers a
 * kernel ONCE per launch into a flat table-driven program:
 *
 *  - Buffer names are interned to dense ids; shared/register storage
 *    becomes plain vectors indexed by per-space slot.
 *  - The statement tree is flattened into jump-threaded micro-ops
 *    (ForInit/ForNext/Branch/Jump/PushPred/PopPred/Sync/Alloc/Leaf),
 *    executed by a program-counter loop with loop variables living in a
 *    dense slot array (slot 0 = tid, slot 1 = bid, 2+ = loop vars).
 *  - Every leaf view's symbolic offset is decomposed (ir/affine.h)
 *    into base + Σ stride·term and each term is classified by the
 *    slots it reads:
 *      block terms   (no tid, no loop vars)  -> evaluated once per block
 *      thread terms  (tid, no loop vars)     -> cached per thread per block
 *      loop terms    (loop vars, no tid)     -> evaluated once per leaf exec
 *      mixed terms   (tid and loop vars)     -> evaluated per thread
 *    The per-level layout contributions are constants per canonical
 *    element index and are precomputed into a table, so the inner
 *    access loop is `swizzle(base + constAddr[i])` — integer adds
 *    instead of an Expr walk.
 *
 * Block execution is embarrassingly parallel in functional mode, so
 * the executor shards blocks over a host thread pool.  Determinism is
 * preserved exactly (see DESIGN.md "Execution plans & host
 * parallelism"): cost stats are only collected for block 0, functional
 * writes of data-race-free kernels commute across blocks, and
 * sanitizer callbacks are recorded into per-block access logs that are
 * replayed serially in block order at join — producing reports
 * bit-identical to serial interpretation regardless of thread count.
 */

#ifndef GRAPHENE_SIM_PLAN_H
#define GRAPHENE_SIM_PLAN_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/atomic_specs.h"
#include "ir/affine.h"
#include "ir/kernel.h"
#include "sim/cost.h"
#include "sim/memory.h"
#include "sim/sanitizer.h"

namespace graphene
{
namespace sim
{

struct StmtCost;

/** One compiled affine summand: stride * program(slots). */
struct PlanTerm
{
    CompiledExpr prog;
    int64_t stride = 0;
};

/** A leaf operand view lowered to table form. */
struct PlanView
{
    int32_t bufId = -1;      ///< index into Plan::buffers
    int32_t spaceIndex = -1; ///< per-space storage slot (SH/RF)
    int32_t viewId = -1;     ///< dense id across all plan views
    MemorySpace space = MemorySpace::GL;
    ScalarType scalar = ScalarType::Fp32;
    int64_t elemBytes = 4;
    int64_t totalSize = 0;
    Swizzle swizzle;
    bool identitySwizzle = true;
    /** Σ level contributions per canonical element index. */
    std::vector<int64_t> constAddr;
    /** Constant part of the affine offset decomposition. */
    int64_t offsetBase = 0;
    std::vector<PlanTerm> blockTerms;  ///< no tid, no loop vars
    std::vector<PlanTerm> threadTerms; ///< tid only (per-block cache)
    std::vector<PlanTerm> loopTerms;   ///< loop vars, no tid
    std::vector<PlanTerm> mixedTerms;  ///< tid and loop vars
};

/** One leaf spec with pre-matched atomic info and compiled views. */
struct PlanLeaf
{
    const Spec *spec = nullptr;
    const AtomicSpecInfo *info = nullptr;
    int64_t stmtId = -1;
    /** Input views first, then output views. */
    std::vector<PlanView> views;
    int numInputs = 0;
};

/** An interned buffer. */
struct PlanBuffer
{
    std::string name;
    MemorySpace space = MemorySpace::GL;
    int32_t spaceIndex = -1; ///< SH/RF storage slot; -1 for GL
};

/** One jump-threaded micro-op. */
struct PlanOp
{
    enum class Kind : uint8_t
    {
        ForInit,     ///< slots[a] = begin; empty loop jumps to target
        ForNext,     ///< slots[a] += step; back-edge to target
        Branch,      ///< if conds[a] == 0 jump to target
        Jump,        ///< jump to target
        PushPred,    ///< push preds[a] onto the predicate stack
        PopPred,     ///< pop the predicate stack
        Sync,        ///< barrier (b != 0: warp scope)
        AllocShared, ///< (re)allocate shared buffer a at slot b
        AllocReg,    ///< (re)allocate per-thread register buffer
        Leaf,        ///< execute leaves[a]
    };

    Kind kind = Kind::Jump;
    int32_t a = -1;
    int32_t b = -1;
    int32_t target = -1;
    int64_t begin = 0;
    int64_t end = 0; ///< loop bound; Alloc: element count
    int64_t step = 1;
    int64_t stmtId = -1; ///< Sync cost attribution
    int64_t syncId = -1;
    ScalarType scalar = ScalarType::Fp32; ///< Alloc element type
};

/**
 * Sanitizer access log of one block: the exact callback sequence the
 * interpreter would have made, replayed serially at join so hazard
 * reports are identical to serial execution.  Register-file accesses
 * are omitted (the sanitizer ignores them unconditionally).
 */
struct AccessLog
{
    enum class Kind : uint8_t
    {
        Access,
        Sync,
        SharedAlloc,
    };

    struct Entry
    {
        int64_t elem = 0;   ///< element index; Sync: syncId; Alloc: count
        int64_t extent = 0; ///< backing buffer extent (Access)
        int32_t bufId = -1;
        int32_t tid = -1;
        Kind kind = Kind::Access;
        uint8_t space = 0;
        uint8_t scalar = 0;
        uint8_t flags = 0; ///< bit 0: write; bit 1: warp-scope sync
    };

    std::vector<Entry> entries;
};

/** The compiled launch program. */
class Plan
{
  public:
    static Plan compile(const Kernel &kernel,
                        const AtomicSpecRegistry &registry);

    std::vector<PlanOp> ops;
    std::vector<PlanLeaf> leaves;
    std::vector<PlanBuffer> buffers;
    std::vector<CompiledExpr> preds; ///< predicate programs
    std::vector<CompiledExpr> conds; ///< block-uniform branch programs
    int slotCount = 2; ///< 0 = tid, 1 = bid, 2+ = loop variables
    int numViews = 0;
    int numShared = 0;
    int numReg = 0;
    int64_t gridSize = 0;
    int64_t blockSize = 0;
};

/** Per-block execution config (all sinks optional). */
struct PlanRunConfig
{
    CostStats *stats = nullptr;
    std::map<int64_t, StmtCost> *byStmt = nullptr;
    /** Report-mode hazard recording for deferred serial replay. */
    AccessLog *log = nullptr;
    /** Direct sanitizer callbacks (Trap mode; implies serial). */
    Sanitizer *san = nullptr;
};

/**
 * Executes plan blocks; holds reusable per-worker state (slot array,
 * shared/register storage, per-view caches).  One runner per worker
 * thread; runBlock may be called for any block in any order.
 */
class PlanBlockRunner
{
  public:
    PlanBlockRunner(const Plan &plan, DeviceMemory &memory,
                    const GpuArch &arch);

    void runBlock(int64_t bid, const PlanRunConfig &cfg);

  private:
    friend struct PlanLeafEnv;

    Buffer &resolve(const PlanView &view, int64_t tid);
    int64_t threadTermSum(const PlanView &view, int64_t tid);
    void execLeaf(const PlanLeaf &leaf, const PlanRunConfig &cfg);

    const Plan &plan_;
    DeviceMemory &memory_;
    const GpuArch &arch_;
    const PlanRunConfig *cfg_ = nullptr;

    std::vector<int64_t> slots_;
    std::vector<int32_t> predStack_;
    std::vector<Buffer *> glBufs_;
    std::vector<Buffer> shared_;
    std::vector<char> sharedAlloc_;
    std::vector<std::vector<Buffer>> regs_; ///< [tid][regSlot]
    std::vector<char> regAlloc_;
    std::vector<int64_t> viewBlockConst_;   ///< base + block terms
    std::vector<std::vector<int64_t>> threadCache_;
    std::vector<char> threadCacheValid_;
    std::vector<int64_t> leafViewOff_; ///< per-leaf-view exec offsets
    double leafConflict_ = 1.0;
};

/** Replay one block's access log through the (serial) sanitizer. */
void replayAccessLog(const AccessLog &log, const Plan &plan,
                     Sanitizer &san);

} // namespace sim
} // namespace graphene

#endif // GRAPHENE_SIM_PLAN_H
