/**
 * @file
 * Shared leaf-spec semantics for the simulator's two execution engines.
 *
 * The interpreter (sim/executor.cpp) and the compiled-plan executor
 * (sim/plan.cpp) must produce *bit-identical* results: same buffer
 * contents, same cost counters in the same accumulation order, same
 * sanitizer callback sequence.  The only way to keep that true under
 * maintenance is to have exactly one definition of what each atomic
 * opcode does.  runLeaf() is that definition: a template over an
 * environment that supplies data access and cost sinks while the
 * template owns instruction semantics — warp iteration, predication
 * structure, ldmatrix/MMA fragment distributions, and the exact order
 * of reads, writes, and cost accounting.
 *
 * Environment concept:
 *   int64_t blockSize() const;
 *   bool active(int64_t tid);                  // predicate stack
 *   void readInto(bool isOutput, int idx, int64_t tid,
 *                 std::vector<double> &out);   // resizes to view size
 *   void writeFrom(bool isOutput, int idx, int64_t tid,
 *                  const std::vector<double> &vals);
 *   void appendRanges(bool isOutput, int idx, int64_t tid,
 *                     bool contiguous,
 *                     std::vector<std::pair<int64_t, int64_t>> &out);
 *   CostStats *stats();                        // null: skip accounting
 *   void noteLeafConflict(double ratio);       // worst smem conflict
 *
 * readInto/writeFrom drive the sanitizer (or its access log) as a side
 * effect; appendRanges computes (byte address, byte width) pairs for
 * the cost model without sanitizer side effects, mirroring the
 * historical interpreter behavior.
 */

#ifndef GRAPHENE_SIM_LEAF_EXEC_H
#define GRAPHENE_SIM_LEAF_EXEC_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "arch/atomic_specs.h"
#include "ir/spec.h"
#include "sim/cost.h"
#include "support/check.h"

namespace graphene
{
namespace sim
{

/** Per-level linear indices for canonical value @p v of @p view
 *  (innermost level varies fastest; colexicographic within a level),
 *  written into @p idx without reallocating. */
inline void
levelIndicesInto(const TensorView &view, int64_t v,
                 std::vector<int64_t> &idx)
{
    idx.resize(static_cast<size_t>(view.numLevels()));
    for (int l = view.numLevels() - 1; l >= 0; --l) {
        const int64_t size = view.level(l).size();
        idx[static_cast<size_t>(l)] = v % size;
        v /= size;
    }
}

template <class Env>
void
runLeaf(const Spec &spec, const AtomicSpecInfo &info, const GpuArch &arch,
        Env &env)
{
    const int64_t blockSize = env.blockSize();
    CostStats *st = env.stats();

    auto viewOf = [&](bool isOutput, int idx) -> const TensorView & {
        return (isOutput ? spec.outputs() : spec.inputs())[
            static_cast<size_t>(idx)];
    };

    std::vector<std::pair<int64_t, int64_t>> ranges;
    /** Account one warp-wide memory access on view (isOutput, idx). */
    auto accountMemAccess = [&](bool isOutput, int idx,
                                const std::vector<int64_t> &lanes,
                                bool isLoad) {
        const TensorView &v = viewOf(isOutput, idx);
        if (v.memory() == MemorySpace::RF)
            return;
        if (!st)
            return;
        const bool contiguous =
            info.requiresContiguous || v.totalSize() == 1;
        ranges.clear();
        for (int64_t t : lanes)
            env.appendRanges(isOutput, idx, t, contiguous, ranges);
        double useful = 0;
        for (const auto &[addr, bytes] : ranges) {
            (void)addr;
            useful += static_cast<double>(bytes);
        }
        if (v.memory() == MemorySpace::SH) {
            const int64_t waves = smemWavefronts(ranges, arch);
            const int64_t ideal = smemIdealWavefronts(ranges, arch);
            st->smemWavefronts += static_cast<double>(waves);
            st->smemIdealWavefronts += static_cast<double>(ideal);
            st->smemAccesses += 1;
            env.noteLeafConflict(static_cast<double>(waves)
                                 / static_cast<double>(ideal));
        } else {
            const int64_t sectors = globalSectors(ranges, arch);
            st->globalSectors += static_cast<double>(sectors);
            st->globalAccesses += 1;
            st->globalUsefulBytes += useful;
            const double bytes =
                static_cast<double>(sectors) * arch.sectorBytes;
            if (isLoad)
                st->globalLoadBytes += bytes;
            else
                st->globalStoreBytes += bytes;
        }
    };
    auto addFlops = [&](double flops) {
        if (!st)
            return;
        switch (info.pipe) {
          case Pipe::Tensor: st->tensorFlops += flops; break;
          case Pipe::Fp16: st->fp16Flops += flops; break;
          case Pipe::Sfu: st->sfuOps += flops; break;
          default: st->fp32Flops += flops; break;
        }
    };

    switch (info.opcode) {
      // ---------------------------------------------- per-thread ops -
      case AtomicOpcode::LdGlobal:
      case AtomicOpcode::StGlobal:
      case AtomicOpcode::LdShared:
      case AtomicOpcode::StShared:
      case AtomicOpcode::MoveReg:
      case AtomicOpcode::CpAsync: {
        std::vector<int64_t> lanes;
        std::vector<double> vals;
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            lanes.clear();
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t)
                if (env.active(t))
                    lanes.push_back(t);
            if (lanes.empty())
                continue;
            if (st)
                st->issueSlots += 1;
            for (int64_t t : lanes) {
                env.readInto(false, 0, t, vals);
                env.writeFrom(true, 0, t, vals);
            }
            accountMemAccess(false, 0, lanes, /*isLoad=*/true);
            accountMemAccess(true, 0, lanes, /*isLoad=*/false);
        }
        return;
      }
      case AtomicOpcode::FmaScalar:
      case AtomicOpcode::Hfma2: {
        std::vector<int64_t> lanes;
        std::vector<double> av, bv, dv;
        int64_t activeCount = 0;
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            lanes.clear();
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t)
                if (env.active(t))
                    lanes.push_back(t);
            if (lanes.empty())
                continue;
            for (int64_t t : lanes) {
                ++activeCount;
                env.readInto(false, 0, t, av);
                env.readInto(false, 1, t, bv);
                env.readInto(true, 0, t, dv);
                for (size_t i = 0; i < dv.size(); ++i)
                    dv[i] += av[i] * bv[i];
                env.writeFrom(true, 0, t, dv);
            }
            if (st)
                st->issueSlots += 1;
            // Memory-resident operands (Fig. 8 style) cost accesses;
            // the accumulator is read-modify-write.
            accountMemAccess(false, 0, lanes, /*isLoad=*/true);
            accountMemAccess(false, 1, lanes, /*isLoad=*/true);
            accountMemAccess(true, 0, lanes, /*isLoad=*/true);
            accountMemAccess(true, 0, lanes, /*isLoad=*/false);
        }
        addFlops(static_cast<double>(activeCount) * 2.0
                 * static_cast<double>(info.elemsOut));
        return;
      }
      case AtomicOpcode::UnaryScalar:
      case AtomicOpcode::BinaryScalar:
      case AtomicOpcode::BinaryVector2: {
        const TensorView &out = spec.outputs()[0];
        const bool isBinary = spec.kind() == SpecKind::BinaryPointwise;
        const bool sfu = spec.op() == OpKind::Exp
            || spec.op() == OpKind::Rsqrt || spec.op() == OpKind::Tanh
            || spec.op() == OpKind::Sigmoid || spec.op() == OpKind::Gelu;
        std::vector<double> av, bv, ov;
        int64_t activeCount = 0;
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            bool any = false;
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t) {
                if (!env.active(t))
                    continue;
                any = true;
                ++activeCount;
                env.readInto(false, 0, t, av);
                ov.resize(av.size());
                if (isBinary && !spec.hasScalarOperand()) {
                    env.readInto(false, 1, t, bv);
                    for (size_t i = 0; i < av.size(); ++i)
                        ov[i] = applyOp(spec.op(), av[i], bv[i]);
                } else if (isBinary) {
                    for (size_t i = 0; i < av.size(); ++i)
                        ov[i] = applyOp(spec.op(), av[i],
                                        spec.scalarOperand());
                } else {
                    for (size_t i = 0; i < av.size(); ++i)
                        ov[i] = applyOp(spec.op(), av[i]);
                }
                env.writeFrom(true, 0, t, ov);
            }
            if (any && st)
                st->issueSlots += 1;
        }
        const double ops = static_cast<double>(activeCount)
            * static_cast<double>(out.totalSize());
        if (sfu) {
            if (st)
                st->sfuOps += ops;
        } else {
            addFlops(ops);
        }
        return;
      }
      case AtomicOpcode::ReduceSerial: {
        const TensorView &in = spec.inputs()[0];
        std::vector<double> vals;
        std::vector<double> accVec(1);
        int64_t activeCount = 0;
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            bool any = false;
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t) {
                if (!env.active(t))
                    continue;
                any = true;
                ++activeCount;
                env.readInto(false, 0, t, vals);
                double acc = reductionIdentity(spec.op());
                for (double v : vals)
                    acc = applyOp(spec.op(), acc, v);
                accVec[0] = acc;
                env.writeFrom(true, 0, t, accVec);
            }
            if (any && st)
                st->issueSlots +=
                    static_cast<double>(in.totalSize()) / 32.0 + 1;
        }
        if (st)
            st->fp32Flops += static_cast<double>(activeCount)
                * static_cast<double>(in.totalSize());
        return;
      }
      case AtomicOpcode::InitReg: {
        const TensorView &out = spec.outputs()[0];
        const std::vector<double> vals(
            static_cast<size_t>(out.totalSize()), spec.initValue());
        for (int64_t warp = 0; warp < blockSize; warp += 32) {
            bool any = false;
            for (int64_t t = warp; t < std::min(warp + 32, blockSize);
                 ++t) {
                if (!env.active(t))
                    continue;
                any = true;
                env.writeFrom(true, 0, t, vals);
            }
            if (any && st)
                st->issueSlots += 1;
        }
        return;
      }
      // -------------------------------------------- warp-collective -
      case AtomicOpcode::ShflSync: {
        std::vector<double> scratch;
        std::vector<double> one(1);
        for (int64_t warp = 0; warp + 32 <= blockSize; warp += 32) {
            if (!env.active(warp))
                continue;
            double lane[32];
            for (int64_t l = 0; l < 32; ++l) {
                env.readInto(false, 0, warp + l, scratch);
                lane[l] = scratch[0];
            }
            for (int64_t l = 0; l < 32; ++l) {
                int64_t srcLane = l;
                switch (spec.shflMode()) {
                  case ShflMode::Bfly: srcLane = l ^ spec.shflArg(); break;
                  case ShflMode::Down:
                    srcLane = l + spec.shflArg();
                    if (srcLane >= 32)
                        srcLane = l;
                    break;
                  case ShflMode::Idx: srcLane = spec.shflArg(); break;
                }
                one[0] = lane[srcLane];
                env.writeFrom(true, 0, warp + l, one);
            }
            if (st)
                st->issueSlots += 1;
        }
        return;
      }
      case AtomicOpcode::Ldmatrix:
      case AtomicOpcode::LdmatrixTrans: {
        const bool trans = info.opcode == AtomicOpcode::LdmatrixTrans;
        std::vector<double> row, vals(8);
        for (int64_t warp = 0; warp + 32 <= blockSize; warp += 32) {
            if (!env.active(warp))
                continue;
            // Phase 1: the four 8x8 matrices; matrix g's row r comes
            // from thread 8g + r's source view (8 contiguous halves).
            double tiles[4][8][8];
            std::vector<std::pair<int64_t, int64_t>> allRanges;
            for (int64_t g = 0; g < 4; ++g) {
                for (int64_t r = 0; r < 8; ++r) {
                    const int64_t t = warp + 8 * g + r;
                    env.readInto(false, 0, t, row);
                    GRAPHENE_ASSERT(row.size() == 8u)
                        << "ldmatrix row must have 8 elements";
                    for (int64_t c = 0; c < 8; ++c)
                        tiles[g][r][c] = row[static_cast<size_t>(c)];
                    if (st)
                        env.appendRanges(false, 0, t, true, allRanges);
                }
            }
            // Phase 2: distribute — thread t receives, for register
            // pair g, elements (t/4, 2*(t%4)) and (t/4, 2*(t%4)+1); the
            // .trans variant distributes the transposed matrices.
            for (int64_t l = 0; l < 32; ++l) {
                for (int64_t v = 0; v < 8; ++v) {
                    const int64_t g = v / 2;
                    const int64_t r = l / 4;
                    const int64_t c = 2 * (l % 4) + (v % 2);
                    vals[static_cast<size_t>(v)] =
                        trans ? tiles[g][c][r] : tiles[g][r][c];
                }
                env.writeFrom(true, 0, warp + l, vals);
            }
            if (st) {
                st->issueSlots += 1;
                // The instruction performs 4 shared-memory phases of 8
                // rows each; conflicts computed per phase from the row
                // addresses.
                for (int64_t g = 0; g < 4; ++g) {
                    std::vector<std::pair<int64_t, int64_t>> phase(
                        allRanges.begin() + g * 8,
                        allRanges.begin() + (g + 1) * 8);
                    const int64_t waves = smemWavefronts(phase, arch);
                    const int64_t ideal =
                        smemIdealWavefronts(phase, arch);
                    st->smemWavefronts += static_cast<double>(waves);
                    st->smemIdealWavefronts +=
                        static_cast<double>(ideal);
                    st->smemAccesses += 1;
                    env.noteLeafConflict(static_cast<double>(waves)
                                         / static_cast<double>(ideal));
                }
            }
        }
        return;
      }
      case AtomicOpcode::MmaM16N8K16:
      case AtomicOpcode::MmaM16N8K8: {
        const bool k16 = info.opcode == AtomicOpcode::MmaM16N8K16;
        const int64_t K = k16 ? 16 : 8;
        std::vector<double> av, bv, dv;
        for (int64_t warp = 0; warp + 32 <= blockSize; warp += 32) {
            if (!env.active(warp))
                continue;
            double A[16][16] = {};
            double B[16][8] = {};
            double D[16][8] = {};
            for (int64_t l = 0; l < 32; ++l) {
                env.readInto(false, 0, warp + l, av);
                for (int64_t v = 0; v < info.elemsIn0; ++v) {
                    const int64_t m = l / 4 + 8 * (k16 ? (v / 2) % 2
                                                        : v / 2);
                    const int64_t k = 2 * (l % 4) + v % 2
                        + (k16 ? 8 * (v / 4) : 0);
                    A[m][k] = av[static_cast<size_t>(v)];
                }
                env.readInto(false, 1, warp + l, bv);
                for (int64_t v = 0; v < info.elemsIn1; ++v) {
                    const int64_t k = 2 * (l % 4) + v % 2 + 8 * (v / 2);
                    const int64_t n = l / 4;
                    B[k][n] = bv[static_cast<size_t>(v)];
                }
                env.readInto(true, 0, warp + l, dv);
                for (int64_t v = 0; v < info.elemsOut; ++v) {
                    const int64_t m = l / 4 + 8 * (v / 2);
                    const int64_t n = 2 * (l % 4) + v % 2;
                    D[m][n] = dv[static_cast<size_t>(v)];
                }
            }
            for (int64_t m = 0; m < 16; ++m)
                for (int64_t n = 0; n < 8; ++n) {
                    double acc = D[m][n];
                    for (int64_t k = 0; k < K; ++k)
                        acc += A[m][k] * B[k][n];
                    D[m][n] = acc;
                }
            dv.resize(static_cast<size_t>(info.elemsOut));
            for (int64_t l = 0; l < 32; ++l) {
                for (int64_t v = 0; v < info.elemsOut; ++v) {
                    const int64_t m = l / 4 + 8 * (v / 2);
                    const int64_t n = 2 * (l % 4) + v % 2;
                    dv[static_cast<size_t>(v)] = D[m][n];
                }
                env.writeFrom(true, 0, warp + l, dv);
            }
            if (st) {
                st->issueSlots += 1;
                st->tensorFlops +=
                    static_cast<double>(info.flopsPerGroup);
            }
        }
        return;
      }
      case AtomicOpcode::MmaM8N8K4: {
        std::vector<double> av, bv, dv(8);
        for (int64_t warp = 0; warp + 32 <= blockSize; warp += 32) {
            if (!env.active(warp))
                continue;
            // Four quad-pairs per warp; QP q = lanes {4q..4q+3} and
            // {16+4q..16+4q+3}.
            for (int64_t q = 0; q < 4; ++q) {
                double A[8][4] = {};
                double B[4][8] = {};
                double D[8][8] = {};
                auto lanesOf = [&](int64_t qt) {
                    return warp + 4 * q + (qt % 4) + 16 * (qt / 4);
                };
                for (int64_t qt = 0; qt < 8; ++qt) {
                    const int64_t t = lanesOf(qt);
                    env.readInto(false, 0, t, av);
                    for (int64_t v = 0; v < 4; ++v)
                        A[qt][v] = av[static_cast<size_t>(v)];
                    env.readInto(false, 1, t, bv);
                    for (int64_t v = 0; v < 4; ++v)
                        B[v][qt] = bv[static_cast<size_t>(v)];
                    env.readInto(true, 0, t, dv);
                    for (int64_t v = 0; v < 8; ++v)
                        D[qt][v] = dv[static_cast<size_t>(v)];
                }
                for (int64_t m = 0; m < 8; ++m)
                    for (int64_t n = 0; n < 8; ++n)
                        for (int64_t k = 0; k < 4; ++k)
                            D[m][n] += A[m][k] * B[k][n];
                dv.resize(8);
                for (int64_t qt = 0; qt < 8; ++qt) {
                    for (int64_t v = 0; v < 8; ++v)
                        dv[static_cast<size_t>(v)] = D[qt][v];
                    env.writeFrom(true, 0, lanesOf(qt), dv);
                }
                if (st)
                    st->tensorFlops +=
                        static_cast<double>(info.flopsPerGroup);
            }
            if (st)
                st->issueSlots += 1;
        }
        return;
      }
    }
    panic("unhandled atomic opcode");
}

} // namespace sim
} // namespace graphene

#endif // GRAPHENE_SIM_LEAF_EXEC_H
