#include "sim/sanitizer.h"

#include <sstream>

#include "support/check.h"

namespace graphene
{
namespace sim
{

std::string
sanitizerModeName(SanitizerMode mode)
{
    switch (mode) {
      case SanitizerMode::Off: return "off";
      case SanitizerMode::Report: return "report";
      case SanitizerMode::Trap: return "trap";
    }
    GRAPHENE_ASSERT(false) << "unknown sanitizer mode";
    return "?";
}

std::string
hazardKindName(HazardKind kind)
{
    switch (kind) {
      case HazardKind::WriteWriteRace: return "write-write race";
      case HazardKind::ReadWriteRace: return "read-write race";
      case HazardKind::CrossBlockRace: return "cross-block race";
      case HazardKind::OutOfBounds: return "out-of-bounds access";
      case HazardKind::UninitializedRead: return "uninitialized read";
    }
    GRAPHENE_ASSERT(false) << "unknown hazard kind";
    return "?";
}

std::string
SanitizerFinding::str() const
{
    std::ostringstream os;
    os << hazardKindName(kind) << " on " << memorySpaceName(space) << " '"
       << buffer << "' bytes [" << byteOffset << ", "
       << (byteOffset + byteWidth) << ") in block " << block << ": "
       << (onWrite ? "write" : "read") << " by thread " << tid;
    if (otherTid >= 0) {
        os << " conflicts with thread " << otherTid;
        if (otherBlock >= 0 && otherBlock != block)
            os << " of block " << otherBlock;
    } else if (otherBlock >= 0 && otherBlock != block) {
        os << " conflicts with block " << otherBlock;
    }
    if (!detail.empty())
        os << " (" << detail << ")";
    return os.str();
}

int64_t
SanitizerReport::count(HazardKind kind) const
{
    int64_t n = 0;
    for (const SanitizerFinding &f : findings)
        if (f.kind == kind)
            ++n;
    return n;
}

std::string
SanitizerReport::str() const
{
    std::ostringstream os;
    os << "sanitizer (" << sanitizerModeName(mode) << "): ";
    if (clean()) {
        os << "no hazards in " << accessesChecked << " accesses ("
           << bytesShadowed << " bytes shadowed, " << syncsObserved
           << " syncs)";
        return os.str();
    }
    os << findings.size() << " finding(s)";
    if (suppressed > 0)
        os << " + " << suppressed << " suppressed";
    os << " in " << accessesChecked << " accesses";
    for (const SanitizerFinding &f : findings)
        os << "\n  " << f.str();
    return os.str();
}

Sanitizer::Sanitizer(SanitizerMode mode) : mode_(mode)
{
    report_.mode = mode;
}

void
Sanitizer::beginKernel()
{
    report_ = SanitizerReport();
    report_.mode = mode_;
    shared_.clear();
    global_.clear();
    bid_ = -1;
    blockEpoch_ = 0;
    warpEpoch_ = 0;
    lastSyncId_ = -1;
}

void
Sanitizer::beginBlock(int64_t bid)
{
    bid_ = bid;
    // Epochs stay monotonic across blocks so stale shared-memory shadow
    // records from a previous (sequentially executed) block can never
    // alias a same-epoch conflict in this one.
    ++blockEpoch_;
    ++warpEpoch_;
    lastSyncId_ = -1;
    // Shared memory is re-allocated (and re-poisoned) per block.
    shared_.clear();
}

void
Sanitizer::onSync(bool warpScope, int64_t syncId)
{
    ++report_.syncsObserved;
    lastSyncId_ = syncId;
    ++warpEpoch_;
    if (!warpScope)
        ++blockEpoch_;
}

void
Sanitizer::onSharedAlloc(const std::string &name, ScalarType scalar,
                         int64_t count)
{
    ShadowBuffer shadow;
    shadow.space = MemorySpace::SH;
    shadow.elemBytes = scalarSizeBytes(scalar);
    shadow.elems.resize(static_cast<size_t>(count));
    for (ElemShadow &e : shadow.elems)
        e.initialized = false; // poisoned until first write
    report_.bytesShadowed += count * shadow.elemBytes;
    shared_[name] = std::move(shadow);
}

bool
Sanitizer::ordered(const Access &a, int64_t tid) const
{
    if (!a.valid())
        return true;
    if (a.tid == tid)
        return true; // program order within one thread
    if (a.blockEpoch != blockEpoch_)
        return true; // a __syncthreads separates the accesses
    // Same block epoch: only a warp barrier can order them, and only if
    // both threads belong to the same warp.
    return a.tid / 32 == tid / 32 && a.warpEpoch != warpEpoch_;
}

Sanitizer::ShadowBuffer &
Sanitizer::shadowFor(MemorySpace space, const std::string &buffer,
                     ScalarType scalar, int64_t bufferElems)
{
    if (space == MemorySpace::SH) {
        auto it = shared_.find(buffer);
        if (it != shared_.end())
            return it->second;
        // Shared view without a recorded Alloc (e.g. a test driving the
        // sanitizer directly): shadow it as pre-initialized.
        ShadowBuffer shadow;
        shadow.space = space;
        shadow.elemBytes = scalarSizeBytes(scalar);
        shadow.elems.resize(static_cast<size_t>(bufferElems));
        report_.bytesShadowed += bufferElems * shadow.elemBytes;
        return shared_.emplace(buffer, std::move(shadow)).first->second;
    }
    auto it = global_.find(buffer);
    if (it != global_.end())
        return it->second;
    ShadowBuffer shadow;
    shadow.space = space;
    shadow.elemBytes = scalarSizeBytes(scalar);
    // Global buffers are host-initialized before launch.
    shadow.elems.resize(static_cast<size_t>(bufferElems));
    report_.bytesShadowed += bufferElems * shadow.elemBytes;
    return global_.emplace(buffer, std::move(shadow)).first->second;
}

void
Sanitizer::record(HazardKind kind, const ShadowBuffer &shadow,
                  const std::string &buffer, int64_t elem, int64_t tid,
                  int64_t otherTid, int64_t otherBlock, bool onWrite,
                  const std::string &detail)
{
    SanitizerFinding f;
    f.kind = kind;
    f.space = shadow.space;
    f.buffer = buffer;
    f.block = bid_;
    f.byteOffset = elem * shadow.elemBytes;
    f.byteWidth = shadow.elemBytes;
    f.tid = tid;
    f.otherTid = otherTid;
    f.otherBlock = otherBlock;
    f.onWrite = onWrite;
    f.detail = detail;

    if (mode_ == SanitizerMode::Trap)
        diag::raise({diag::Severity::Error, "sanitizer-trap",
                     "sanitizer trap: " + f.str(), provenancePath(), -1});

    if (static_cast<int64_t>(report_.findings.size()) >= kMaxFindings) {
        ++report_.suppressed;
        return;
    }
    report_.findings.push_back(std::move(f));
}

bool
Sanitizer::onAccess(MemorySpace space, const std::string &buffer,
                    ScalarType scalar, int64_t elem, int64_t bufferElems,
                    int64_t tid, bool isWrite)
{
    if (space == MemorySpace::RF)
        return true; // registers are thread-private
    ++report_.accessesChecked;

    ShadowBuffer &shadow =
        shadowFor(space, buffer, scalar, elem < bufferElems ? bufferElems : 0);

    // Bounds first: a suppressed OOB access must not touch the shadow
    // (nor, in the executor, the backing buffer).
    if (elem < 0 || elem >= bufferElems ||
        elem >= static_cast<int64_t>(shadow.elems.size())) {
        std::ostringstream os;
        os << "element " << elem << " outside extent " << bufferElems;
        // Fake a one-element shadow footprint for the report: reuse the
        // element width but clamp nothing else.
        SanitizerFinding f;
        f.kind = HazardKind::OutOfBounds;
        f.space = space;
        f.buffer = buffer;
        f.block = bid_;
        f.byteOffset = elem * shadow.elemBytes;
        f.byteWidth = shadow.elemBytes;
        f.tid = tid;
        f.onWrite = isWrite;
        f.detail = os.str();
        if (mode_ == SanitizerMode::Trap)
            diag::raise({diag::Severity::Error, "sanitizer-trap",
                         "sanitizer trap: " + f.str(), provenancePath(), -1});
        if (static_cast<int64_t>(report_.findings.size()) >= kMaxFindings)
            ++report_.suppressed;
        else
            report_.findings.push_back(std::move(f));
        return false; // suppress the access
    }

    ElemShadow &e = shadow.elems[static_cast<size_t>(elem)];
    const int32_t tid32 = static_cast<int32_t>(tid);
    const int32_t bid32 = static_cast<int32_t>(bid_);

    auto epochDetail = [&](const Access &prev) {
        std::ostringstream os;
        os << "no barrier since the conflicting access";
        if (lastSyncId_ >= 0)
            os << "; last sync id " << lastSyncId_;
        os << "; epochs block " << prev.blockEpoch << "/" << blockEpoch_
           << " warp " << prev.warpEpoch << "/" << warpEpoch_;
        return os.str();
    };

    if (isWrite) {
        // Write/write race against the previous writer.
        if (!e.reported && e.lastWrite.valid() &&
            e.writeBlock == bid32 && !ordered(e.lastWrite, tid)) {
            e.reported = true;
            record(HazardKind::WriteWriteRace, shadow, buffer, elem, tid,
                   e.lastWrite.tid, -1, true, epochDetail(e.lastWrite));
        }
        // Write-after-read race against unordered readers.
        if (!e.reported && e.lastRead.valid() && e.readBlock == bid32 &&
            !ordered(e.lastRead, tid)) {
            e.reported = true;
            record(HazardKind::ReadWriteRace, shadow, buffer, elem, tid,
                   e.lastRead.tid, -1, true, epochDetail(e.lastRead));
        }
        if (!e.reported && e.otherReader >= 0 && e.readBlock == bid32) {
            Access other = e.lastRead;
            other.tid = e.otherReader;
            if (!ordered(other, tid)) {
                e.reported = true;
                record(HazardKind::ReadWriteRace, shadow, buffer, elem, tid,
                       e.otherReader, -1, true, epochDetail(other));
            }
        }
        // Cross-block hazard on global memory: another block wrote or
        // read these bytes and there is no grid-wide barrier.
        if (space == MemorySpace::GL && !e.reported) {
            if (e.writeBlock >= 0 && e.writeBlock != bid32) {
                e.reported = true;
                record(HazardKind::CrossBlockRace, shadow, buffer, elem,
                       tid, -1, e.writeBlock, true,
                       "blocks are unordered on hardware");
            } else if (e.readBlock >= 0 && e.readBlock != bid32) {
                e.reported = true;
                record(HazardKind::CrossBlockRace, shadow, buffer, elem,
                       tid, -1, e.readBlock, true,
                       "blocks are unordered on hardware");
            }
        }
        e.lastWrite = Access{tid32, blockEpoch_, warpEpoch_};
        e.writeBlock = bid32;
        e.initialized = true;
        return true;
    }

    // Read of poisoned shared memory.
    if (!e.initialized && !e.reported) {
        e.reported = true;
        record(HazardKind::UninitializedRead, shadow, buffer, elem, tid,
               -1, -1, false, "no write since Allocate poisoned it");
    }
    // Read-after-write race against an unordered writer.
    if (!e.reported && e.lastWrite.valid() && e.writeBlock == bid32 &&
        !ordered(e.lastWrite, tid)) {
        e.reported = true;
        record(HazardKind::ReadWriteRace, shadow, buffer, elem, tid,
               e.lastWrite.tid, -1, false, epochDetail(e.lastWrite));
    }
    if (space == MemorySpace::GL && !e.reported && e.writeBlock >= 0 &&
        e.writeBlock != bid32) {
        e.reported = true;
        record(HazardKind::CrossBlockRace, shadow, buffer, elem, tid, -1,
               e.writeBlock, false, "blocks are unordered on hardware");
    }
    if (e.lastRead.valid() && e.lastRead.tid != tid32 &&
        e.lastRead.blockEpoch == blockEpoch_ && e.readBlock == bid32)
        e.otherReader = e.lastRead.tid;
    else if (e.readBlock != bid32 ||
             (e.lastRead.valid() && e.lastRead.blockEpoch != blockEpoch_))
        e.otherReader = -1;
    e.lastRead = Access{tid32, blockEpoch_, warpEpoch_};
    e.readBlock = bid32;
    return true;
}

SanitizerReport
Sanitizer::takeReport()
{
    SanitizerReport out = std::move(report_);
    report_ = SanitizerReport();
    report_.mode = mode_;
    return out;
}

} // namespace sim
} // namespace graphene
