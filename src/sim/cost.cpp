#include "sim/cost.h"

#include <algorithm>
#include <map>
#include <set>

#include "support/check.h"

namespace graphene
{
namespace sim
{

CostStats &
CostStats::operator+=(const CostStats &other)
{
    tensorFlops += other.tensorFlops;
    fp32Flops += other.fp32Flops;
    fp16Flops += other.fp16Flops;
    sfuOps += other.sfuOps;
    issueSlots += other.issueSlots;
    smemWavefronts += other.smemWavefronts;
    smemAccesses += other.smemAccesses;
    smemIdealWavefronts += other.smemIdealWavefronts;
    globalSectors += other.globalSectors;
    globalAccesses += other.globalAccesses;
    globalLoadBytes += other.globalLoadBytes;
    globalStoreBytes += other.globalStoreBytes;
    globalUsefulBytes += other.globalUsefulBytes;
    syncCount += other.syncCount;
    return *this;
}

CostStats
CostStats::operator-(const CostStats &other) const
{
    CostStats r = *this;
    r.tensorFlops -= other.tensorFlops;
    r.fp32Flops -= other.fp32Flops;
    r.fp16Flops -= other.fp16Flops;
    r.sfuOps -= other.sfuOps;
    r.issueSlots -= other.issueSlots;
    r.smemWavefronts -= other.smemWavefronts;
    r.smemAccesses -= other.smemAccesses;
    r.smemIdealWavefronts -= other.smemIdealWavefronts;
    r.globalSectors -= other.globalSectors;
    r.globalAccesses -= other.globalAccesses;
    r.globalLoadBytes -= other.globalLoadBytes;
    r.globalStoreBytes -= other.globalStoreBytes;
    r.globalUsefulBytes -= other.globalUsefulBytes;
    r.syncCount -= other.syncCount;
    return r;
}

CostStats
CostStats::scaled(double factor) const
{
    CostStats r = *this;
    r.tensorFlops *= factor;
    r.fp32Flops *= factor;
    r.fp16Flops *= factor;
    r.sfuOps *= factor;
    r.issueSlots *= factor;
    r.smemWavefronts *= factor;
    r.smemAccesses *= factor;
    r.smemIdealWavefronts *= factor;
    r.globalSectors *= factor;
    r.globalAccesses *= factor;
    r.globalLoadBytes *= factor;
    r.globalStoreBytes *= factor;
    r.globalUsefulBytes *= factor;
    r.syncCount *= factor;
    return r;
}

double
CostStats::avgSmemConflict() const
{
    if (smemIdealWavefronts <= 0)
        return 1.0;
    return smemWavefronts / smemIdealWavefronts;
}

double
CostStats::coalescingPct() const
{
    const double fetched = globalLoadBytes + globalStoreBytes;
    if (fetched <= 0)
        return 100.0;
    return std::min(100.0, 100.0 * globalUsefulBytes / fetched);
}

int64_t
smemWavefronts(const std::vector<std::pair<int64_t, int64_t>>
                   &threadAccesses,
               const GpuArch &arch)
{
    // Model: per bank, count the distinct 4-byte words requested; the
    // access serializes to the maximum over banks (same-word broadcast
    // is free).  A thread accessing w words contributes to w banks.
    const int64_t bankBytes = arch.smemBankBytes;
    const int64_t banks = arch.smemBanks;
    std::map<int64_t, std::set<int64_t>> wordsPerBank;
    for (const auto &[addr, bytes] : threadAccesses) {
        const int64_t firstWord = addr / bankBytes;
        const int64_t lastWord = (addr + bytes - 1) / bankBytes;
        for (int64_t w = firstWord; w <= lastWord; ++w)
            wordsPerBank[w % banks].insert(w);
    }
    int64_t wavefronts = 1;
    for (const auto &[bank, words] : wordsPerBank)
        wavefronts = std::max(wavefronts,
                              static_cast<int64_t>(words.size()));
    return wavefronts;
}

int64_t
smemIdealWavefronts(const std::vector<std::pair<int64_t, int64_t>>
                        &threadAccesses,
                    const GpuArch &arch)
{
    // With a perfect (conflict-free) layout the distinct words spread
    // evenly over the banks, so the floor is ceil(words / banks).
    std::set<int64_t> words;
    for (const auto &[addr, bytes] : threadAccesses) {
        const int64_t firstWord = addr / arch.smemBankBytes;
        const int64_t lastWord = (addr + bytes - 1) / arch.smemBankBytes;
        for (int64_t w = firstWord; w <= lastWord; ++w)
            words.insert(w);
    }
    const int64_t n = static_cast<int64_t>(words.size());
    return std::max<int64_t>(1, (n + arch.smemBanks - 1) / arch.smemBanks);
}

int64_t
globalSectors(const std::vector<std::pair<int64_t, int64_t>>
                  &threadAccesses,
              const GpuArch &arch)
{
    std::set<int64_t> sectors;
    for (const auto &[addr, bytes] : threadAccesses) {
        const int64_t first = addr / arch.sectorBytes;
        const int64_t last = (addr + bytes - 1) / arch.sectorBytes;
        for (int64_t s = first; s <= last; ++s)
            sectors.insert(s);
    }
    return static_cast<int64_t>(sectors.size());
}

double
pipeCycles(const CostStats &stats, const GpuArch &arch,
           std::string *boundBy)
{
    struct PipeLoad { const char *name; double cycles; };
    const std::vector<PipeLoad> pipes = {
        {"tensor", stats.tensorFlops / arch.tensorFlopsPerCycle},
        {"fp32", stats.fp32Flops / arch.fp32FlopsPerCycle},
        {"fp16", stats.fp16Flops / arch.fp16FlopsPerCycle},
        {"sfu", stats.sfuOps / arch.sfuOpsPerCycle},
        {"issue", stats.issueSlots / arch.issueSlotsPerCycle},
        {"smem", stats.smemWavefronts},
        // L1/LSU: up to 4 global sectors serviced per cycle.
        {"l1", stats.globalSectors / 4.0},
    };
    const double syncOverheadCycles = stats.syncCount * 20.0;
    double maxPipe = 0;
    const char *bound = "sync";
    for (const auto &p : pipes) {
        if (p.cycles > maxPipe) {
            maxPipe = p.cycles;
            bound = p.name;
        }
    }
    if (boundBy)
        *boundBy = bound;
    return syncOverheadCycles + maxPipe;
}

KernelTiming
estimateKernelTiming(const GpuArch &arch, const CostStats &perBlock,
                     int64_t gridSize, int64_t blockSize,
                     int64_t smemBytes, double dramBytesHint)
{
    GRAPHENE_CHECK(smemBytes <= arch.maxSharedMemPerBlockBytes)
        << "block uses " << smemBytes << " bytes of shared memory; the "
        << arch.name << " limit is " << arch.maxSharedMemPerBlockBytes;

    KernelTiming t;

    // Occupancy: how many blocks fit on one SM.
    int64_t blocksPerSm = arch.maxBlocksPerSm;
    blocksPerSm = std::min(blocksPerSm, arch.maxThreadsPerSm / blockSize);
    if (smemBytes > 0)
        blocksPerSm = std::min(blocksPerSm,
                               arch.sharedMemPerSmBytes / smemBytes);
    GRAPHENE_CHECK(blocksPerSm >= 1)
        << "kernel cannot be scheduled: block of " << blockSize
        << " threads with " << smemBytes << " bytes shared memory";
    t.blocksPerSm = blocksPerSm;

    // Per-block pipe-limited cycles (per-SM peaks; the pipes are shared
    // by co-resident blocks, so wave time scales with blocks per SM and
    // the per-block cost stays the right unit of accounting).
    t.blockCycles = pipeCycles(perBlock, arch, &t.boundBy);

    // Waves of blocks across the device.  Co-resident blocks share the
    // SM pipes, so the makespan is the per-SM block count times the
    // per-block pipe time (occupancy hides latency, which this
    // throughput model does not charge for).
    const int64_t concurrent = arch.numSms * blocksPerSm;
    t.waves = (gridSize + concurrent - 1) / concurrent;
    const int64_t blocksPerSmTotal = (gridSize + arch.numSms - 1)
        / arch.numSms;
    const double smCycles = static_cast<double>(blocksPerSmTotal)
        * t.blockCycles;
    t.smTimeUs = smCycles / (arch.clockGhz * 1e3);

    // DRAM side over the whole kernel.  A non-zero hint gives the
    // compulsory traffic (L2 catches block-tile panel reuse); it never
    // exceeds the raw request volume.
    const double requested = (perBlock.globalLoadBytes
                              + perBlock.globalStoreBytes) * gridSize;
    const double totalBytes = dramBytesHint > 0
        ? std::min(dramBytesHint, requested)
        : requested;
    t.dramTimeUs = totalBytes / (arch.dramBandwidthGBs * 1e3);

    t.launchOverheadUs = arch.kernelLaunchOverheadUs;
    const double body = std::max(t.smTimeUs, t.dramTimeUs);
    if (t.dramTimeUs > t.smTimeUs)
        t.boundBy = "dram";
    t.timeUs = body + t.launchOverheadUs;

    // Percent-of-peak metrics over the kernel body time.
    if (body > 0) {
        const double secs = body * 1e-6;
        t.tensorPipePct = 100.0 * (perBlock.tensorFlops * gridSize)
            / (arch.tensorFlopsPerCycle * arch.numSms * arch.clockGhz * 1e9
               * secs);
        t.fp32PipePct = 100.0 * (perBlock.fp32Flops * gridSize)
            / (arch.fp32FlopsPerCycle * arch.numSms * arch.clockGhz * 1e9
               * secs);
        t.dramPct = 100.0 * totalBytes / (arch.dramBandwidthGBs * 1e9
                                          * secs);
        t.smemPct = 100.0 * (perBlock.smemWavefronts * gridSize)
            / (arch.numSms * arch.clockGhz * 1e9 * secs);
        t.tensorPipePct = std::min(t.tensorPipePct, 100.0);
        t.fp32PipePct = std::min(t.fp32PipePct, 100.0);
        t.dramPct = std::min(t.dramPct, 100.0);
        t.smemPct = std::min(t.smemPct, 100.0);
    }

    // Headline roofline metrics.  These derive from values already
    // fixed above and never feed back into timeUs, so adding them
    // cannot perturb the simulated time.
    t.flopsTotal = (perBlock.tensorFlops + perBlock.fp32Flops
                    + perBlock.fp16Flops) * gridSize;
    t.dramBytes = totalBytes;
    if (t.timeUs > 0) {
        t.achievedTflops = t.flopsTotal / (t.timeUs * 1e6);
        t.dramGbs = t.dramBytes / (t.timeUs * 1e3);
    }
    t.intensity = t.dramBytes > 0 ? t.flopsTotal / t.dramBytes : 0;
    t.occupancyPct = 100.0 * static_cast<double>(blocksPerSm * blockSize)
        / static_cast<double>(arch.maxThreadsPerSm);
    t.occupancyPct = std::min(t.occupancyPct, 100.0);

    if (t.launchOverheadUs > body) {
        t.rooflineBoundBy = "launch";
        t.pctOfPeak = t.timeUs > 0
            ? 100.0 * body / t.timeUs : 0;
    } else if (t.boundBy == "dram") {
        t.rooflineBoundBy = "dram";
        t.pctOfPeak = t.dramPct;
    } else if (t.boundBy == "tensor") {
        t.rooflineBoundBy = "tensor-pipe";
        t.pctOfPeak = t.tensorPipePct;
    } else if (t.boundBy == "fp32") {
        t.rooflineBoundBy = "fp32-pipe";
        t.pctOfPeak = t.fp32PipePct;
    } else if (t.boundBy == "fp16") {
        t.rooflineBoundBy = "fp16-pipe";
        t.pctOfPeak = 100.0 * (perBlock.fp16Flops * gridSize)
            / (arch.fp16FlopsPerCycle * arch.numSms * arch.clockGhz * 1e9
               * std::max(body, 1e-12) * 1e-6);
        t.pctOfPeak = std::min(t.pctOfPeak, 100.0);
    } else if (t.boundBy == "smem") {
        t.rooflineBoundBy = "smem";
        t.pctOfPeak = t.smemPct;
    } else {
        // sfu / issue / l1 / sync: no dedicated pct is tracked; report
        // the strongest of the tracked resources as the utilization.
        t.rooflineBoundBy = t.boundBy;
        t.pctOfPeak = std::max({t.tensorPipePct, t.fp32PipePct,
                                t.dramPct, t.smemPct});
    }
    return t;
}

} // namespace sim
} // namespace graphene
