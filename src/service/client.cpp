#include "service/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/diag.h"

namespace graphene
{
namespace service
{

namespace
{

[[noreturn]] void
ioError(const std::string &what)
{
    diag::Diagnostic d;
    d.code = "service-io";
    d.message = what;
    diag::raise(std::move(d));
}

} // namespace

ServiceClient::~ServiceClient()
{
    close();
}

bool
ServiceClient::connect(const std::string &socketPath)
{
    close();
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        < 0) {
        ::close(fd);
        return false;
    }
    fd_ = fd;
    buffer_.clear();
    return true;
}

bool
ServiceClient::connectWithRetry(const std::string &socketPath,
                                int timeoutMs)
{
    const auto deadline = std::chrono::steady_clock::now()
        + std::chrono::milliseconds(timeoutMs);
    while (true) {
        if (connect(socketPath))
            return true;
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

std::string
ServiceClient::readLine()
{
    char chunk[16 * 1024];
    while (true) {
        const size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            ioError("connection closed while awaiting a response");
    // note: a 0-byte read with a partial line buffered is still a
    // broken response — the daemon always terminates lines.
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

std::string
ServiceClient::callLine(const std::string &requestLine)
{
    if (fd_ < 0)
        ioError("not connected");
    const std::string data = requestLine + "\n";
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ioError("connection closed while sending a request");
        }
        off += static_cast<size_t>(n);
    }
    return readLine();
}

std::vector<std::string>
ServiceClient::callLines(const std::vector<std::string> &requestLines)
{
    if (fd_ < 0)
        ioError("not connected");
    std::string data;
    for (const std::string &line : requestLines)
        data += line + "\n";
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd_, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ioError("connection closed while sending a batch");
        }
        off += static_cast<size_t>(n);
    }
    std::vector<std::string> responses;
    responses.reserve(requestLines.size());
    for (size_t i = 0; i < requestLines.size(); ++i)
        responses.push_back(readLine());
    return responses;
}

json::Value
ServiceClient::call(const json::Value &request)
{
    return json::Value::parse(callLine(request.dump(0)));
}

} // namespace service
} // namespace graphene
