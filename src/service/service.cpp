#include "service/service.h"

#include <functional>
#include <utility>

#include "baselines/engines.h"
#include "codegen/cuda_emitter.h"
#include "graph/graph.h"
#include "graph/scheduler.h"
#include "ir/printer.h"
#include "ops/fmha.h"
#include "ops/layernorm.h"
#include "ops/ldmatrix_move.h"
#include "ops/lstm.h"
#include "ops/mlp.h"
#include "ops/simple_gemm.h"
#include "ops/tc_gemm.h"
#include "runtime/device.h"
#include "sim/sim_config.h"
#include "support/check.h"
#include "support/diag.h"
#include "support/events.h"
#include "tune/space.h"
#include "tune/tuner.h"

namespace graphene
{
namespace service
{

namespace
{

[[noreturn]] void
reject(const std::string &code, const std::string &message)
{
    diag::Diagnostic d;
    d.code = code;
    d.message = message;
    diag::raise(std::move(d));
}

const GpuArch &
archOf(const std::string &name)
{
    if (name == "volta")
        return GpuArch::volta();
    if (name == "ampere")
        return GpuArch::ampere();
    reject("request-arch",
           "unknown arch '" + name + "' (volta|ampere)");
}

ops::Epilogue
epilogueOf(const std::string &name)
{
    if (name == "none")
        return ops::Epilogue::None;
    if (name == "bias")
        return ops::Epilogue::Bias;
    if (name == "relu")
        return ops::Epilogue::Relu;
    if (name == "bias+relu")
        return ops::Epilogue::BiasRelu;
    if (name == "bias+gelu")
        return ops::Epilogue::BiasGelu;
    reject("request-epilogue",
           "unknown epilogue '" + name
               + "' (none|bias|relu|bias+relu|bias+gelu)");
}

/** The resolved problem shape of a compile request: a 0 field takes
 *  the same default the one-shot CLI uses, so `request --op gemm`
 *  and `graphene-cli profile gemm` describe the same kernel. */
struct ResolvedShape
{
    int64_t m, n, k, layers;
};

ResolvedShape
resolveShape(const Request &req)
{
    ResolvedShape s;
    s.m = req.m > 0 ? req.m : 1024;
    s.n = req.n > 0 ? req.n : 1024;
    s.k = req.k > 0 ? req.k : 1024;
    s.layers = req.layers > 0 ? req.layers : 4;
    return s;
}

/**
 * Build the requested op kernel with virtual (timing-only) buffers —
 * the exact config-construction path of the one-shot CLI's
 * buildKernel(), so artifacts (IR text, CUDA C++) are byte-identical
 * between the daemon and `graphene-cli print-ir`/`emit-cuda`.
 */
Kernel
buildOpKernel(const Request &req, const GpuArch &arch, Device &dev,
              const tune::TuningCache *tuned)
{
    const ResolvedShape s = resolveShape(req);
    auto valloc = [&](const std::string &name, int64_t count) {
        dev.allocateVirtual(name, ScalarType::Fp16, count);
    };
    auto applyTunedTo = [&](auto &cfg) {
        if (tuned)
            tune::applyTuned(*tuned, arch, cfg);
    };
    if (req.op == "simple-gemm") {
        ops::SimpleGemmConfig cfg;
        cfg.m = s.m;
        cfg.n = s.n;
        cfg.k = s.k;
        valloc("%A", cfg.m * cfg.k);
        valloc("%B", cfg.k * cfg.n);
        valloc("%C", cfg.m * cfg.n);
        return ops::buildSimpleGemm(cfg);
    }
    if (req.op == "gemm") {
        ops::TcGemmConfig cfg =
            baselines::heuristicGemmConfig(arch, s.m, s.n, s.k);
        cfg.epilogue = epilogueOf(req.epilogue);
        cfg.swizzle = req.swizzle;
        applyTunedTo(cfg);
        valloc("%A", s.m * s.k);
        valloc("%B", s.k * s.n);
        valloc("%C", s.m * s.n);
        valloc("%bias", s.n);
        return ops::buildTcGemm(arch, cfg);
    }
    if (req.op == "mlp") {
        ops::FusedMlpConfig cfg;
        cfg.m = s.m;
        cfg.layers = s.layers;
        cfg.swizzle = req.swizzle;
        applyTunedTo(cfg);
        valloc("%x", cfg.m * cfg.width);
        valloc("%W", cfg.layers * cfg.width * cfg.width);
        valloc("%b", cfg.layers * cfg.width);
        valloc("%y", cfg.m * cfg.width);
        return ops::buildFusedMlp(arch, cfg);
    }
    if (req.op == "lstm") {
        ops::FusedLstmConfig cfg;
        cfg.m = s.m;
        cfg.n = s.n;
        cfg.k = s.k;
        cfg.swizzle = req.swizzle;
        valloc("%x", cfg.m * cfg.k);
        valloc("%h", cfg.m * cfg.k);
        valloc("%Wx", cfg.k * cfg.n);
        valloc("%Wh", cfg.k * cfg.n);
        valloc("%bias", cfg.n);
        valloc("%out", cfg.m * cfg.n);
        return ops::buildFusedLstm(arch, cfg);
    }
    if (req.op == "fmha") {
        ops::FmhaConfig cfg;
        cfg.swizzle = req.swizzle;
        applyTunedTo(cfg);
        const int64_t elems =
            cfg.batch * cfg.heads * cfg.seq * cfg.headDim;
        for (const char *nm : {"%Q", "%K", "%V", "%O"})
            valloc(nm, elems);
        return ops::buildFusedFmha(arch, cfg);
    }
    if (req.op == "layernorm") {
        ops::LayernormConfig cfg;
        cfg.rows = s.m;
        cfg.cols = s.n;
        applyTunedTo(cfg);
        valloc("%x", cfg.rows * cfg.cols);
        valloc("%gamma", cfg.cols);
        valloc("%beta", cfg.cols);
        valloc("%y", cfg.rows * cfg.cols);
        return ops::buildLayernormFused(arch, cfg);
    }
    if (req.op == "ldmatrix") {
        valloc("%in", 256);
        valloc("%out", 256);
        return ops::buildLdmatrixMoveKernel();
    }
    reject("request-op",
           "unknown op '" + req.op
               + "' (simple-gemm|gemm|mlp|lstm|fmha|layernorm|"
                 "ldmatrix)");
}

json::Value
diagnosticsToJson(const std::vector<diag::Diagnostic> &diags)
{
    json::Value arr = json::Value::array();
    for (const diag::Diagnostic &d : diags) {
        json::Value o = json::Value::object();
        o["severity"] = diag::severityName(d.severity);
        o["code"] = d.code;
        o["message"] = d.message;
        if (!d.provenance.empty())
            o["provenance"] = d.provenance;
        arr.push(std::move(o));
    }
    return arr;
}

} // namespace

CompileService::CompileService(ServiceOptions opts)
    : opts_(std::move(opts))
{
    if (!opts_.tuneCachePath.empty())
        tuneCache_ = tune::TuningCache::load(opts_.tuneCachePath);
}

CompileService::Shard &
CompileService::shardFor(const std::string &key)
{
    // FNV-1a over the key; any stable spread works, reuse the tuner's.
    const std::string hex = tune::fnv1aHex(key);
    // Low hex nibble of the digest picks one of the 16 shards.
    const char c = hex.empty() ? '0' : hex.back();
    const int idx = c >= 'a' ? 10 + (c - 'a') : c - '0';
    return shards_[idx & (kShards - 1)];
}

std::shared_ptr<const CompileService::Entry>
CompileService::memoize(const std::string &key,
                        const std::function<json::Value()> &compute,
                        bool *cached)
{
    Shard &sh = shardFor(key);
    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lk(sh.mu);
        auto it = sh.entries.find(key);
        if (it == sh.entries.end()) {
            entry = std::make_shared<Entry>();
            sh.entries.emplace(key, entry);
            owner = true;
        } else {
            entry = it->second;
        }
        if (!owner) {
            // Single-flight: ride the in-progress (or finished)
            // computation.  Waiting on a Pending entry still counts
            // as a hit — the compile ran once for all of us.
            sh.cv.wait(lk, [&] {
                return entry->state != Entry::State::Pending;
            });
            *cached = true;
            hits_.fetch_add(1, std::memory_order_relaxed);
            return entry;
        }
    }

    *cached = false;
    misses_.fetch_add(1, std::memory_order_relaxed);
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    std::string payloadText, code, message;
    bool ok = true;
    try {
        payloadText = compute().dump(0);
    } catch (const InternalError &e) {
        ok = false;
        code = "internal";
        message = e.what();
    } catch (const Error &e) {
        ok = false;
        code = "error";
        message = e.what();
    } catch (const std::exception &e) {
        ok = false;
        code = "exception";
        message = e.what();
    }
    inFlight_.fetch_sub(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(sh.mu);
        if (ok) {
            entry->payloadText = std::move(payloadText);
            entry->state = Entry::State::Ready;
        } else {
            entry->code = std::move(code);
            entry->message = std::move(message);
            entry->state = Entry::State::Failed;
        }
    }
    sh.cv.notify_all();
    return entry;
}

void
CompileService::invalidateTuned()
{
    for (Shard &sh : shards_) {
        std::lock_guard<std::mutex> lk(sh.mu);
        for (auto it = sh.entries.begin(); it != sh.entries.end();) {
            const bool tunedKey =
                it->first.find("|tuned=1") != std::string::npos;
            // Pending entries stay: their owner is mid-compute and
            // waiters are parked on the shard cv; erasing the slot
            // would fork the single flight.
            if (tunedKey
                && it->second->state != Entry::State::Pending)
                it = sh.entries.erase(it);
            else
                ++it;
        }
    }
}

json::Value
CompileService::runCompile(const Request &req)
{
    const GpuArch &arch = archOf(req.arch);
    tune::TuningCache snapshot;
    if (req.tuned) {
        std::lock_guard<std::mutex> lk(tuneMu_);
        snapshot = tuneCache_;
    }
    Device dev(arch);
    Kernel kernel = [&] {
        events::Span span("decompose");
        return buildOpKernel(req, arch, dev,
                             req.tuned ? &snapshot : nullptr);
    }();
    sim::KernelProfile prof;
    {
        events::Span span("execute");
        prof = dev.launch(kernel, LaunchMode::Timing);
    }

    const ResolvedShape s = resolveShape(req);
    json::Value result = json::Value::object();
    result["op"] = req.op;
    result["arch"] = arch.name;
    json::Value shape = json::Value::object();
    shape["m"] = s.m;
    shape["n"] = s.n;
    shape["k"] = s.k;
    shape["layers"] = s.layers;
    result["shape"] = std::move(shape);
    result["epilogue"] = req.epilogue;
    result["swizzle"] = req.swizzle;
    result["tuned"] = req.tuned;
    json::Value launch = json::Value::object();
    launch["kernel"] = kernel.name();
    launch["grid"] = kernel.gridSize();
    launch["block"] = kernel.blockSize();
    launch["smem_bytes"] = kernel.sharedMemoryBytes();
    result["launch"] = std::move(launch);
    // Every artifact is computed and memoized regardless of the
    // request's filter — the filter is applied at response-assembly
    // time, so requests that differ only in `artifacts` share one
    // compile (and one cache entry).
    result["sim_us"] = prof.timing.timeUs;
    result["bound_by"] = prof.timing.boundBy;
    result["waves"] = prof.timing.waves;
    result["ir"] = printKernel(kernel);
    result["cuda"] = emitCuda(kernel, arch);
    return result;
}

json::Value
CompileService::runSchedule(const Request &req)
{
    if (!req.graph.isObject())
        reject("request-graph",
               "schedule requests carry an inline graphene.graph.v1 "
               "object in field 'graph'");
    const GpuArch &arch = archOf(req.arch);
    graph::Graph g;
    {
        events::Span span("parse");
        g = graph::Graph::fromJson(req.graph);
    }
    tune::TuningCache snapshot;
    graph::ScheduleOptions sopts;
    if (req.tuned) {
        std::lock_guard<std::mutex> lk(tuneMu_);
        snapshot = tuneCache_;
        sopts.tuned = &snapshot;
    }
    graph::Schedule sched;
    {
        events::Span span("schedule");
        sched = graph::scheduleGraph(g, arch, sopts);
    }
    json::Value result = json::Value::object();
    result["graph"] = g.name;
    result["arch"] = arch.name;
    result["scheduled_us"] = sched.scheduledUs;
    result["unfused_us"] = sched.unfusedUs;
    result["scheduled_kernels"] = sched.scheduledKernels;
    result["unfused_kernels"] = sched.unfusedKernels;
    result["schedule"] = graph::scheduleToJson(g, sched);
    return result;
}

json::Value
CompileService::runTune(const Request &req)
{
    const GpuArch &arch = archOf(req.arch);
    tune::ProblemShape shape;
    shape.m = req.m;
    shape.n = req.n;
    shape.k = req.k;
    shape.layers = req.layers;
    const tune::TunableSpace space =
        tune::buildTunableSpace(req.op, arch, shape);
    if (space.candidates.empty())
        reject("request-op",
               "no tunable space registered for op '" + req.op
                   + "' (tc-gemm|layernorm|mlp|fmha)");

    json::Value result = json::Value::object();
    result["op"] = space.op;
    result["arch"] = space.archName;
    result["shape"] = space.shape;
    result["space_hash"] = space.spaceHash;
    result["space_size"] =
        static_cast<int64_t>(space.candidates.size());

    // A fresh persistent entry (same space hash) short-circuits the
    // search: the daemon answers tune requests it has already solved
    // — across restarts, when a cache path is configured — at memo
    // speed.
    {
        std::lock_guard<std::mutex> lk(tuneMu_);
        const json::Value *have = tuneCache_.find(
            space.op, space.archName, space.shape, space.spaceHash);
        if (have) {
            result["cache_hit"] = true;
            result["best"] = have->at("best");
            return result;
        }
    }

    tune::TuneOptions topts;
    topts.budget = static_cast<int>(
        req.budget > 0 ? req.budget : opts_.tuneBudget);
    topts.threads = sim::defaultThreads();
    const tune::TuneResult res = tune::runTune(space, arch, topts);
    {
        std::lock_guard<std::mutex> lk(tuneMu_);
        tuneCache_.put(res);
        if (!opts_.tuneCachePath.empty())
            tuneCache_.save(opts_.tuneCachePath);
    }
    // Memoized tuned=1 compiles were built against the old best
    // params; drop them so the next request recompiles.
    invalidateTuned();

    result["cache_hit"] = false;
    result["evaluated"] = res.evaluated;
    json::Value best = json::Value::object();
    best["params"] = tune::paramsToJson(res.best.params);
    best["sim_us"] = res.best.simUs;
    best["bound_by"] = res.best.boundBy;
    result["best"] = std::move(best);
    json::Value dflt = json::Value::object();
    dflt["params"] = tune::paramsToJson(res.defaultResult.params);
    dflt["sim_us"] = res.defaultResult.simUs;
    result["default"] = std::move(dflt);
    return result;
}

json::Value
CompileService::statsToJson() const
{
    const ServiceStats s = stats();
    json::Value o = json::Value::object();
    o["requests"] = s.requests;
    o["hits"] = s.hits;
    o["misses"] = s.misses;
    o["errors"] = s.errors;
    o["in_flight"] = s.inFlight;
    json::Value shards = json::Value::array();
    for (int64_t n : s.shardEntries)
        shards.push(n);
    o["shard_entries"] = std::move(shards);
    {
        std::lock_guard<std::mutex> lk(tuneMu_);
        o["tune_entries"] = static_cast<int64_t>(tuneCache_.size());
    }
    return o;
}

ServiceStats
CompileService::stats() const
{
    ServiceStats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.errors = errors_.load(std::memory_order_relaxed);
    s.inFlight = inFlight_.load(std::memory_order_relaxed);
    for (const Shard &sh : shards_) {
        std::lock_guard<std::mutex> lk(sh.mu);
        s.shardEntries.push_back(
            static_cast<int64_t>(sh.entries.size()));
    }
    return s;
}

bool
CompileService::shutdownRequested() const
{
    return shutdown_.load(std::memory_order_acquire);
}

std::string
CompileService::handleToText(const json::Value &doc)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    Request req;
    try {
        req = Request::fromJson(doc);
    } catch (const std::exception &e) {
        // Best-effort id echo for the malformed document.
        if (doc.isObject() && doc.contains("id")
            && doc.at("id").isString())
            req.id = doc.at("id").asString();
        req.verb = "";
        errors_.fetch_add(1, std::memory_order_relaxed);
        return makeErrorResponse(req, "bad-request", e.what()).dump(0);
    }

    if (req.verb == "ping")
        return makeResponse(req, true).dump(0);
    if (req.verb == "stats") {
        json::Value resp = makeResponse(req, true);
        resp["stats"] = statsToJson();
        return resp.dump(0);
    }
    if (req.verb == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
        json::Value resp = makeResponse(req, true);
        resp["stopping"] = true;
        return resp.dump(0);
    }

    const std::string key = req.cacheKey();
    bool cached = false;
    std::shared_ptr<const Entry> entry =
        memoize(key, [&]() -> json::Value {
            // Per-request isolation: warnings/notes collect into the
            // response, library events land in a request-local log,
            // and the block simulator runs single-threaded (the pool
            // parallelizes across requests instead).
            events::EventLog log;
            log.setDeterministic(true);
            events::ScopedLog scopedLog(log);
            sim::ScopedThreads scopedThreads(opts_.requestThreads);
            diag::Collector collector;

            json::Value result;
            if (req.verb == "schedule")
                result = runSchedule(req);
            else if (req.verb == "tune")
                result = runTune(req);
            else
                result = runCompile(req);

            // The graceful-degradation report() sites collect their
            // errors instead of throwing; surface them as a failure.
            for (const diag::Diagnostic &d : collector.all())
                if (d.severity == diag::Severity::Error)
                    throw Error(d.str());
            if (!collector.all().empty())
                result["diagnostics"] =
                    diagnosticsToJson(collector.all());
            result["counters"] = log.countersToJson();
            return result;
        }, &cached);

    if (entry->state == Entry::State::Failed) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        json::Value resp =
            makeErrorResponse(req, entry->code, entry->message);
        resp["cached"] = cached;
        resp["key"] = key;
        return resp.dump(0);
    }
    // An artifact filter prunes the payload at assembly time (a
    // parse + refilter; rare — `request --print` traffic).
    if (!req.artifacts.empty()) {
        const json::Value full =
            json::Value::parse(entry->payloadText);
        json::Value result = json::Value::object();
        for (const auto &kv : full.fields()) {
            // Map payload fields back to their artifact group; every
            // non-artifact field always travels.
            const std::string &f = kv.first;
            const char *group = (f == "ir")     ? "ir"
                : (f == "cuda")                 ? "cuda"
                : (f == "sim_us" || f == "bound_by" || f == "waves")
                ? "timing"
                : nullptr;
            if (!group || req.wantsArtifact(group))
                result[f] = kv.second;
        }
        json::Value resp = makeResponse(req, true);
        resp["cached"] = cached;
        resp["key"] = key;
        resp["result"] = std::move(result);
        return resp.dump(0);
    }
    // Hot path: splice the pre-serialized payload into the envelope.
    // Field order matches makeResponse so cached and computed
    // responses differ only in the "cached" flag.
    std::string out = "{\"schema\":";
    out += json::quote(schemas::kResponse);
    out += ",\"id\":";
    out += json::quote(req.id);
    out += ",\"verb\":";
    out += json::quote(req.verb);
    out += ",\"ok\":true,\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"key\":";
    out += json::quote(key);
    out += ",\"result\":";
    out += entry->payloadText;
    out += "}";
    return out;
}

json::Value
CompileService::handle(const json::Value &doc)
{
    return json::Value::parse(handleToText(doc));
}

std::string
CompileService::handleLine(const std::string &line)
{
    json::Value doc;
    try {
        doc = json::Value::parse(line);
    } catch (const std::exception &e) {
        Request req;
        req.verb = "";
        errors_.fetch_add(1, std::memory_order_relaxed);
        return makeErrorResponse(req, "bad-json", e.what()).dump(0);
    }
    return handleToText(doc);
}

} // namespace service
} // namespace graphene
