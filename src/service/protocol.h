/**
 * @file
 * The compilation-service wire protocol: newline-delimited JSON over a
 * unix-domain socket, one graphene.request.v1 document per line in,
 * one graphene.response.v1 document per line out, answered in request
 * order per connection.
 *
 * Verbs:
 *   compile   build one kernel op (parse -> decompose -> verify ->
 *             plan-compile -> timing sim) and return its artifacts
 *             (IR text, CUDA C++, launch geometry, simulated time).
 *   schedule  run the graph fusion scheduler on an inline
 *             graphene.graph.v1 document and return the schedule.
 *   tune      search the op's tunable config space (or hit the
 *             persistent graphene.tune.v1 cache) and return the
 *             best-found params; write-through to the daemon's cache.
 *   stats     hit/miss/in-flight counters and per-shard occupancy.
 *   ping      liveness probe.
 *   shutdown  drain and stop the daemon.
 *
 * Responses echo the request id, carry "ok" plus either the artifact
 * fields or a structured "error" {code, message}, and flag "cached"
 * when the answer came from the in-memory plan cache.
 */

#ifndef GRAPHENE_SERVICE_PROTOCOL_H
#define GRAPHENE_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/schemas.h"

namespace graphene
{
namespace service
{

struct Request
{
    static constexpr const char *kSchema = schemas::kRequest;

    /** Client-chosen correlation id, echoed verbatim ("" = none). */
    std::string id;
    std::string verb = "compile";
    /** compile: simple-gemm|gemm|mlp|lstm|fmha|layernorm|ldmatrix;
     *  tune: tc-gemm|layernorm|mlp|fmha. */
    std::string op;
    std::string arch = "ampere";
    /** Problem shape; 0 = the op's one-shot CLI default. */
    int64_t m = 0, n = 0, k = 0, layers = 0;
    std::string epilogue = "none";
    bool swizzle = true;
    /** Apply the daemon's tuning cache to the op config. */
    bool tuned = false;
    /** tune verb: timed-simulation budget (0 = daemon default). */
    int64_t budget = 0;
    /** schedule verb: inline graphene.graph.v1 document. */
    json::Value graph;
    /** compile artifacts to return: "ir", "cuda", "timing"
     *  (empty = all). */
    std::vector<std::string> artifacts;

    /**
     * Parse and validate one request document.  Raises a
     * diag::Diagnostic (code "request-schema" / "request-verb") on a
     * missing/wrong schema tag or unknown verb.
     */
    static Request fromJson(const json::Value &doc);

    /** The request document (what a client puts on the wire). */
    json::Value toJson() const;

    /**
     * Deterministic memoization key: verb, op, arch, canonical shape,
     * op options, and the tuned flag.  Graph requests key on an
     * FNV-1a digest of the canonical graph document.
     */
    std::string cacheKey() const;

    /** True when the artifact @p name was requested (or no filter). */
    bool wantsArtifact(const std::string &name) const;
};

/** Response skeleton: schema, echoed id, verb, ok flag. */
json::Value makeResponse(const Request &req, bool ok);

/** Failed-response document with a structured error {code, message}. */
json::Value makeErrorResponse(const Request &req,
                              const std::string &code,
                              const std::string &message);

} // namespace service
} // namespace graphene

#endif // GRAPHENE_SERVICE_PROTOCOL_H
