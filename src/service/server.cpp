#include "service/server.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/diag.h"
#include "support/thread_pool.h"

namespace graphene
{
namespace service
{

namespace
{

[[noreturn]] void
socketError(const std::string &what, const std::string &path)
{
    diag::Diagnostic d;
    d.code = "socket-path";
    d.message = what + " '" + path + "': " + std::strerror(errno);
    diag::raise(std::move(d));
}

/** Write all of @p data, riding out partial writes; returns false on
 *  a peer hangup (EPIPE — MSG_NOSIGNAL keeps it an errno). */
bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

SocketServer::SocketServer(CompileService &service,
                           std::string socketPath)
    : service_(service), path_(std::move(socketPath))
{}

SocketServer::~SocketServer()
{
    stop();
    joinHandlers(/*finishedOnly=*/false);
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(path_.c_str());
    }
}

void
SocketServer::joinHandlers(bool finishedOnly)
{
    std::lock_guard<std::mutex> lk(threadsMu_);
    for (auto it = handlers_.begin(); it != handlers_.end();) {
        if (finishedOnly && !it->done->load(std::memory_order_acquire)) {
            ++it;
            continue;
        }
        if (it->thread.joinable())
            it->thread.join();
        it = handlers_.erase(it);
    }
}

bool
SocketServer::stopping() const
{
    return stop_.load(std::memory_order_acquire)
        || service_.shutdownRequested();
}

void
SocketServer::listen()
{
    if (listenFd_ >= 0)
        return;
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
        errno = ENAMETOOLONG;
        socketError("socket path too long", path_);
    }
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        socketError("cannot create socket", path_);
    ::unlink(path_.c_str()); // a stale socket file from a dead daemon
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr))
        < 0) {
        ::close(fd);
        socketError("cannot bind", path_);
    }
    if (::listen(fd, 64) < 0) {
        ::close(fd);
        socketError("cannot listen on", path_);
    }
    listenFd_ = fd;
}

int64_t
SocketServer::serve()
{
    listen();
    int64_t accepted = 0;
    while (!stopping()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (rc == 0 || !(pfd.revents & POLLIN))
            continue;
        const int conn = ::accept(listenFd_, nullptr, nullptr);
        if (conn < 0)
            continue;
        ++accepted;
        // Reap finished handlers so a long-lived daemon does not
        // accumulate one parked thread per past connection.
        joinHandlers(/*finishedOnly=*/true);
        Handler h;
        h.done = std::make_shared<std::atomic<bool>>(false);
        auto done = h.done;
        h.thread = std::thread([this, conn, done] {
            handleConnection(conn);
            done->store(true, std::memory_order_release);
        });
        std::lock_guard<std::mutex> lk(threadsMu_);
        handlers_.push_back(std::move(h));
    }
    // Drain: connection handlers observe stopping() within one tick.
    joinHandlers(/*finishedOnly=*/false);
    return accepted;
}

void
SocketServer::stop()
{
    stop_.store(true, std::memory_order_release);
}

void
SocketServer::handleConnection(int fd)
{
    std::string buffer;
    char chunk[16 * 1024];
    bool open = true;
    while (open) {
        pollfd pfd{fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0 && errno != EINTR)
            break;
        if (stopping() && rc <= 0)
            break;
        if (rc <= 0 || !(pfd.revents & (POLLIN | POLLHUP)))
            continue;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break; // peer closed (or error): done
        buffer.append(chunk, static_cast<size_t>(n));

        // Every complete line available right now is one batch.
        std::vector<std::string> lines;
        size_t start = 0;
        for (size_t nl = buffer.find('\n', start);
             nl != std::string::npos;
             nl = buffer.find('\n', start)) {
            lines.emplace_back(buffer, start, nl - start);
            start = nl + 1;
        }
        buffer.erase(0, start);
        if (lines.empty())
            continue;

        std::vector<std::string> responses(lines.size());
        if (lines.size() == 1) {
            // The warm-cache fast path: no pool handoff.
            responses[0] = service_.handleLine(lines[0]);
        } else {
            ThreadPool::global().run(
                static_cast<int64_t>(lines.size()), [&](int64_t i) {
                    responses[static_cast<size_t>(i)] =
                        service_.handleLine(
                            lines[static_cast<size_t>(i)]);
                });
        }
        for (const std::string &resp : responses)
            if (!writeAll(fd, resp + "\n")) {
                open = false;
                break;
            }
        if (service_.shutdownRequested())
            break;
    }
    ::close(fd);
}

} // namespace service
} // namespace graphene
