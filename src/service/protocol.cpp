#include "service/protocol.h"

#include <algorithm>

#include "support/diag.h"
#include "tune/space.h"

namespace graphene
{
namespace service
{

namespace
{

[[noreturn]] void
badRequest(const std::string &code, const std::string &message)
{
    diag::Diagnostic d;
    d.code = code;
    d.message = message;
    diag::raise(std::move(d));
}

int64_t
intField(const json::Value &doc, const char *key, int64_t fallback)
{
    if (!doc.contains(key))
        return fallback;
    const json::Value &v = doc.at(key);
    if (!v.isNumber())
        badRequest("request-field",
                   std::string("field '") + key + "' must be a number");
    return static_cast<int64_t>(v.asNumber());
}

std::string
stringField(const json::Value &doc, const char *key,
            const std::string &fallback)
{
    if (!doc.contains(key))
        return fallback;
    const json::Value &v = doc.at(key);
    if (!v.isString())
        badRequest("request-field",
                   std::string("field '") + key + "' must be a string");
    return v.asString();
}

bool
boolField(const json::Value &doc, const char *key, bool fallback)
{
    if (!doc.contains(key))
        return fallback;
    const json::Value &v = doc.at(key);
    if (!v.isBool())
        badRequest("request-field",
                   std::string("field '") + key + "' must be a bool");
    return v.asBool();
}

} // namespace

Request
Request::fromJson(const json::Value &doc)
{
    if (!doc.isObject() || !doc.contains("schema")
        || !doc.at("schema").isString()
        || doc.at("schema").asString() != kSchema)
        badRequest("request-schema",
                   std::string("not a ") + kSchema + " document");
    Request r;
    r.id = stringField(doc, "id", "");
    r.verb = stringField(doc, "verb", "compile");
    static const char *kVerbs[] = {"compile", "schedule", "tune",
                                   "stats",   "ping",     "shutdown"};
    if (std::find_if(std::begin(kVerbs), std::end(kVerbs),
                     [&](const char *v) { return r.verb == v; })
        == std::end(kVerbs))
        badRequest("request-verb", "unknown verb '" + r.verb
                       + "' (compile|schedule|tune|stats|ping|"
                         "shutdown)");
    r.op = stringField(doc, "op", "");
    r.arch = stringField(doc, "arch", "ampere");
    r.m = intField(doc, "m", 0);
    r.n = intField(doc, "n", 0);
    r.k = intField(doc, "k", 0);
    r.layers = intField(doc, "layers", 0);
    r.epilogue = stringField(doc, "epilogue", "none");
    r.swizzle = boolField(doc, "swizzle", true);
    r.tuned = boolField(doc, "tuned", false);
    r.budget = intField(doc, "budget", 0);
    if (doc.contains("graph"))
        r.graph = doc.at("graph");
    if (doc.contains("artifacts")) {
        const json::Value &arts = doc.at("artifacts");
        if (!arts.isArray())
            badRequest("request-field",
                       "field 'artifacts' must be an array of strings");
        for (size_t i = 0; i < arts.size(); ++i)
            r.artifacts.push_back(arts.at(i).asString());
    }
    return r;
}

json::Value
Request::toJson() const
{
    json::Value doc = json::Value::object();
    doc["schema"] = kSchema;
    if (!id.empty())
        doc["id"] = id;
    doc["verb"] = verb;
    if (!op.empty())
        doc["op"] = op;
    doc["arch"] = arch;
    if (m)
        doc["m"] = m;
    if (n)
        doc["n"] = n;
    if (k)
        doc["k"] = k;
    if (layers)
        doc["layers"] = layers;
    if (epilogue != "none")
        doc["epilogue"] = epilogue;
    if (!swizzle)
        doc["swizzle"] = false;
    if (tuned)
        doc["tuned"] = true;
    if (budget)
        doc["budget"] = budget;
    if (!graph.isNull())
        doc["graph"] = graph;
    if (!artifacts.empty()) {
        json::Value arts = json::Value::array();
        for (const std::string &a : artifacts)
            arts.push(a);
        doc["artifacts"] = std::move(arts);
    }
    return doc;
}

std::string
Request::cacheKey() const
{
    std::string key = verb + "|" + op + "|" + arch;
    if (verb == "schedule") {
        // Graph requests key on a digest of the canonical document:
        // two textually different but field-identical graphs share an
        // entry, anything else does not.
        key += "|graph=" + tune::fnv1aHex(graph.dump());
    } else {
        key += "|m=" + std::to_string(m) + "|n=" + std::to_string(n)
            + "|k=" + std::to_string(k)
            + "|layers=" + std::to_string(layers) + "|" + epilogue
            + "|swz=" + (swizzle ? "1" : "0");
        if (verb == "tune")
            key += "|budget=" + std::to_string(budget);
    }
    key += std::string("|tuned=") + (tuned ? "1" : "0");
    return key;
}

bool
Request::wantsArtifact(const std::string &name) const
{
    if (artifacts.empty())
        return true;
    return std::find(artifacts.begin(), artifacts.end(), name)
        != artifacts.end();
}

json::Value
makeResponse(const Request &req, bool ok)
{
    json::Value doc = json::Value::object();
    doc["schema"] = schemas::kResponse;
    doc["id"] = req.id;
    doc["verb"] = req.verb;
    doc["ok"] = ok;
    return doc;
}

json::Value
makeErrorResponse(const Request &req, const std::string &code,
                  const std::string &message)
{
    json::Value doc = makeResponse(req, false);
    json::Value err = json::Value::object();
    err["code"] = code;
    err["message"] = message;
    doc["error"] = std::move(err);
    return doc;
}

} // namespace service
} // namespace graphene
