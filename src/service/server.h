/**
 * @file
 * The unix-domain-socket transport of the compilation service.
 *
 * Wire format: newline-delimited JSON — clients write one
 * graphene.request.v1 document per line and read one
 * graphene.response.v1 document per line, in request order per
 * connection.  Clients may pipeline: every complete line available in
 * one read is executed as a batch on the shared support/thread_pool
 * (a single line runs inline, keeping the warm-cache path free of
 * handoff latency), and the responses are written back in order.
 *
 * Lifecycle: serve() blocks in a poll/accept loop (200 ms tick) until
 * the service accepts a `shutdown` request or stop() is called, then
 * joins every connection thread and removes the socket file.
 * Connection handlers poll with the same tick so an idle client never
 * delays shutdown.
 */

#ifndef GRAPHENE_SERVICE_SERVER_H
#define GRAPHENE_SERVICE_SERVER_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"

namespace graphene
{
namespace service
{

class SocketServer
{
  public:
    SocketServer(CompileService &service, std::string socketPath);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /**
     * Bind and listen on the socket path (raises a diag on failure:
     * "socket-path" for an over-long or unbindable path).  Must be
     * called before serve(); separate so a host can confirm the
     * socket exists before clients race to connect.
     */
    void listen();

    /** Accept-and-dispatch until shutdown; returns the number of
     *  connections served.  Calls listen() if not yet listening. */
    int64_t serve();

    /** Ask serve() to return (same effect as a `shutdown` request). */
    void stop();

    const std::string &socketPath() const { return path_; }

  private:
    /** One connection handler; `done` flips when the thread is about
     *  to exit so the accept loop can join (reap) it cheaply. */
    struct Handler
    {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void handleConnection(int fd);
    bool stopping() const;
    void joinHandlers(bool finishedOnly);

    CompileService &service_;
    std::string path_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};

    std::mutex threadsMu_;
    std::vector<Handler> handlers_;
};

} // namespace service
} // namespace graphene

#endif // GRAPHENE_SERVICE_SERVER_H
