/**
 * @file
 * The compilation service core: request execution, the sharded
 * single-flight plan/tune memo, and the persistent tuning cache
 * behind it.  Transport-independent — the unix-socket server
 * (service/server.h), the `request` CLI verb, and the tests all drive
 * the same CompileService::handle entry point.
 *
 * Concurrency model.  handle() is safe to call from any number of
 * threads at once.  Results are memoized in a sharded in-memory cache
 * keyed by Request::cacheKey() — (verb, op, arch, shape, options,
 * tuned) — with single-flight deduplication: N concurrent requests
 * for the same key block on one computation and all observe its
 * result (the N-1 waiters count as cache hits).  Failures are
 * negatively cached under the same discipline, so a poisoned request
 * storm compiles (and fails) once.
 *
 * Isolation model.  Each computed request runs under a per-request
 * diag::Collector (warnings/notes captured into the response instead
 * of process state), a per-request events::ScopedLog (library event
 * counters land in the response's "counters" object), and
 * sim::ScopedThreads(1) (block-level simulator parallelism is
 * replaced by request-level parallelism across pool threads).
 *
 * Tuning.  `tune` requests search the op's config space and
 * write-through to the daemon's graphene.tune.v1 cache (persisted to
 * ServiceOptions::tuneCachePath when set); a fresh persistent entry
 * (matching space hash) short-circuits the search.  A completed tune
 * invalidates memoized `tuned=1` compile entries so later compiles
 * observe the new best-found config.
 */

#ifndef GRAPHENE_SERVICE_SERVICE_H
#define GRAPHENE_SERVICE_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "support/json.h"
#include "tune/cache.h"

namespace graphene
{
namespace service
{

struct ServiceOptions
{
    /** graphene.tune.v1 cache to preload and write-through ("" =
     *  in-memory only). */
    std::string tuneCachePath;
    /** Default timed-simulation budget for `tune` requests that do
     *  not set one. */
    int64_t tuneBudget = 16;
    /** Simulator worker threads per request (see file comment). */
    int requestThreads = 1;
};

/** A point-in-time snapshot of the daemon's counters. */
struct ServiceStats
{
    int64_t requests = 0;  // total requests handled
    int64_t hits = 0;      // answered from the memo (incl. waiters)
    int64_t misses = 0;    // computed fresh
    int64_t errors = 0;    // failed responses (incl. cached failures)
    int64_t inFlight = 0;  // computations running right now
    std::vector<int64_t> shardEntries; // memo occupancy per shard
};

class CompileService
{
  public:
    static constexpr int kShards = 16;

    explicit CompileService(ServiceOptions opts = ServiceOptions());

    /** Execute one request document; always returns a
     *  graphene.response.v1 document (never throws). */
    json::Value handle(const json::Value &request);

    /** Parse one wire line, execute it, serialize the response as one
     *  compact line (no trailing newline).  This is the hot path: a
     *  memo hit splices the entry's pre-serialized payload into the
     *  response envelope without ever materializing a document. */
    std::string handleLine(const std::string &line);

    /** True once a `shutdown` request was accepted. */
    bool shutdownRequested() const;

    ServiceStats stats() const;

    const ServiceOptions &options() const { return opts_; }

  private:
    /** One memo slot; lives under its shard's mutex except for the
     *  owner's unlocked compute window. */
    struct Entry
    {
        enum class State
        {
            Pending,
            Ready,  // payloadText holds the serialized response body
            Failed, // code/message hold the structured error
        };
        State state = State::Pending;
        /** The result object, pre-serialized (compact) by the owner
         *  so hits splice bytes instead of deep-copying a tree. */
        std::string payloadText;
        std::string code;
        std::string message;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::condition_variable cv;
        std::map<std::string, std::shared_ptr<Entry>> entries;
    };

    Shard &shardFor(const std::string &key);

    /**
     * The single-flight memo: look up @p key; the first caller
     * computes via @p compute (unlocked), everyone else blocks until
     * the entry resolves.  @p cached reports whether this caller was
     * served from the memo.
     */
    std::shared_ptr<const Entry>
    memoize(const std::string &key,
            const std::function<json::Value()> &compute, bool *cached);

    /** Drop resolved `tuned=1` compile/schedule entries (post-tune). */
    void invalidateTuned();

    /** The shared implementation: returns the response as one compact
     *  serialized line. */
    std::string handleToText(const json::Value &request);

    json::Value runCompile(const Request &req);
    json::Value runSchedule(const Request &req);
    json::Value runTune(const Request &req);
    json::Value statsToJson() const;

    ServiceOptions opts_;
    Shard shards_[kShards];

    /** Guards tuneCache_ (lookups copy, tune write-through mutates). */
    mutable std::mutex tuneMu_;
    tune::TuningCache tuneCache_;

    std::atomic<bool> shutdown_{false};
    mutable std::atomic<int64_t> requests_{0}, hits_{0}, misses_{0},
        errors_{0}, inFlight_{0};
};

} // namespace service
} // namespace graphene

#endif // GRAPHENE_SERVICE_SERVICE_H
