/**
 * @file
 * Blocking unix-socket client for the compilation service: connect,
 * send newline-delimited graphene.request.v1 lines, read the
 * graphene.response.v1 lines back in order.  One client per thread —
 * the load generator (tools/bench_service) opens one per simulated
 * closed-loop client; the `request` CLI verb opens one for a single
 * call.
 */

#ifndef GRAPHENE_SERVICE_CLIENT_H
#define GRAPHENE_SERVICE_CLIENT_H

#include <string>
#include <vector>

#include "support/json.h"

namespace graphene
{
namespace service
{

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /** Connect to the daemon's socket; false when nothing listens. */
    bool connect(const std::string &socketPath);
    void close();
    bool connected() const { return fd_ >= 0; }

    /**
     * Retry connect() until the daemon answers or @p timeoutMs
     * elapses — the "wait for the daemon to come up" handshake used
     * by tests and the CI smoke job.
     */
    bool connectWithRetry(const std::string &socketPath,
                          int timeoutMs);

    /** Send one raw request line, read one response line.  Raises a
     *  diag ("service-io") on a broken connection. */
    std::string callLine(const std::string &requestLine);

    /** Pipelined: write all lines, then read as many back. */
    std::vector<std::string>
    callLines(const std::vector<std::string> &requestLines);

    /** Document-level convenience over callLine. */
    json::Value call(const json::Value &request);

  private:
    std::string readLine();

    int fd_ = -1;
    std::string buffer_;
};

} // namespace service
} // namespace graphene

#endif // GRAPHENE_SERVICE_CLIENT_H
