#include "ops/simple_gemm.h"

#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

Kernel
buildSimpleGemm(const SimpleGemmConfig &config)
{
    diag::Scope rootScope("simple-gemm");
    const int64_t m = config.m, n = config.n, k = config.k;
    const int64_t bm = config.blockTileM, bn = config.blockTileN;
    const int64_t tm = config.threadsM, tn = config.threadsN;
    GRAPHENE_CHECK(m % bm == 0 && n % bn == 0)
        << "problem size must divide the block tile";
    GRAPHENE_CHECK(bm % tm == 0 && bn % tn == 0)
        << "block tile must divide the thread arrangement";
    const int64_t rm = bm / tm; // per-thread outputs
    const int64_t rn = bn / tn;
    const int64_t gridM = m / bm;
    const int64_t gridN = n / bn;
    const int64_t gridSize = gridM * gridN;
    const int64_t blockSize = tm * tn;

    Kernel kernel("graphene_simple_gemm", gridSize, blockSize);
    auto A = TensorView::global("%A", Layout::rowMajor(IntTuple{m, k}),
                                ScalarType::Fp16);
    auto B = TensorView::global("%B", Layout::rowMajor(IntTuple{k, n}),
                                ScalarType::Fp16);
    auto C = TensorView::global("%C", Layout::rowMajor(IntTuple{m, n}),
                                ScalarType::Fp16);
    kernel.addParam(A, true);
    kernel.addParam(B, true);
    kernel.addParam(C, false);

    // Fig. 8 lines 2-5: logical groups of blocks and threads.
    auto blocks = ThreadGroup::blocks(
        "#4", Layout::colMajor(IntTuple{gridM, gridN}), gridSize);
    auto threads = ThreadGroup::threads(
        "#5", Layout::colMajor(IntTuple{tm, tn}), blockSize);
    const auto bidIdx = blocks.indices();  // (bid_m, bid_n)
    const auto tidIdx = threads.indices(); // (tid_m, tid_n)

    // Fig. 8 lines 12-18: tile all three tensors for thread-blocks.
    auto aBlock = A.tile({Layout::vector(bm), std::nullopt})
                      .index({bidIdx[0], constant(0)});
    auto bBlock = B.tile({std::nullopt, Layout::vector(bn)})
                      .index({constant(0), bidIdx[1]});
    auto cBlock = C.tile({Layout::vector(bm), Layout::vector(bn)})
                      .index({bidIdx[0], bidIdx[1]});

    // Fig. 8 lines 20-26: tile for threads.
    auto aThread = aBlock.tile({Layout::vector(rm), std::nullopt})
                       .index({tidIdx[0], constant(0)});
    auto bThread = bBlock.tile({std::nullopt, Layout::vector(rn)})
                       .index({constant(0), tidIdx[1]});
    auto cThread = cBlock.tile({Layout::vector(rm), Layout::vector(rn)})
                       .index({tidIdx[0], tidIdx[1]});

    // Fig. 8 lines 28-34: scalar views and the per-thread atomic hfma.
    auto mVar = variable("m", rm);
    auto nVar = variable("n", rn);
    auto kVar = variable("k", k);
    auto aScalar = aThread.index({mVar, kVar}).named("%18");
    auto bScalar = bThread.index({kVar, nVar}).named("%19");
    auto cScalar = cThread.index({mVar, nVar}).named("%20");

    auto fma = Spec::matmul(perThread(blockSize), aScalar, bScalar,
                            cScalar);

    kernel.setBody({
        forStmtUniform("k", 0, k, 1, {
            forStmt("m", 0, rm, 1, {
                forStmt("n", 0, rn, 1, {call(fma)}),
            }),
        }),
    });
    return kernel;
}

} // namespace ops
} // namespace graphene
