#include "ops/softmax.h"

#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

Kernel
buildRowSoftmax(const GpuArch &arch, int64_t rows, int64_t cols,
                double preScale, const std::string &inName,
                const std::string &outName)
{
    (void)arch;
    diag::Scope rootScope("row-softmax");
    const int64_t blockSize = 128;
    GRAPHENE_CHECK(cols % blockSize == 0)
        << "softmax width " << cols << " must divide " << blockSize;
    const int64_t perThreadN = cols / blockSize;

    Kernel kernel("row_softmax", rows, blockSize);
    kernel.addParam(TensorView::global(
                        inName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(
                        outName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), false);

    auto one = perThread(blockSize);
    auto t = tid(blockSize);
    auto row = bid(rows);

    std::vector<StmtPtr> body;
    body.push_back(alloc("%xh", ScalarType::Fp16, MemorySpace::RF,
                         perThreadN));
    body.push_back(alloc("%xf", ScalarType::Fp32, MemorySpace::RF,
                         perThreadN));
    for (const char *r : {"%partial", "%mx", "%sum", "%tmp", "%inv",
                          "%one"})
        body.push_back(alloc(r, ScalarType::Fp32, MemorySpace::RF, 1));
    body.push_back(alloc("%slots", ScalarType::Fp32, MemorySpace::SH,
                         blockSize / 32));

    // Load the thread's slice (contiguous per thread) and convert.
    ExprPtr base = add(mul(row, constant(cols)),
                       mul(t, constant(perThreadN)));
    {
        diag::Scope loadScope("load-row");
        for (int64_t e = 0; e < perThreadN; ++e) {
            TensorView src("%g", inName, Layout(), ScalarType::Fp16,
                           MemorySpace::GL);
            body.push_back(call(Spec::move(
                one, src.offsetBy(add(base, constant(e))),
                scalarReg("%xh", e, ScalarType::Fp16))));
        }
        body.push_back(call(Spec::move(
            one, vecReg("%xh", perThreadN, ScalarType::Fp16),
            vecReg("%xf", perThreadN, ScalarType::Fp32))));
        if (preScale != 1.0)
            for (int64_t e = 0; e < perThreadN; ++e)
                body.push_back(call(Spec::binaryScalar(
                    OpKind::Mul, one, scalarReg("%xf", e), preScale,
                    scalarReg("%xf", e))));
    }

    // Row max.
    {
        diag::Scope maxScope("row-max");
        body.push_back(call(Spec::reduction(
            OpKind::Max, one,
            vecReg("%xf", perThreadN, ScalarType::Fp32),
            scalarReg("%partial"))));
        auto rmax = emitBlockAllReduce(blockSize, OpKind::Max,
                                       "%partial", "%mx", "%tmp",
                                       "%slots");
        body.insert(body.end(), rmax.begin(), rmax.end());
    }

    // exp(x - max), then the row sum.
    {
        diag::Scope sumScope("exp-sum");
        for (int64_t e = 0; e < perThreadN; ++e) {
            body.push_back(call(Spec::binary(
                OpKind::Sub, one, scalarReg("%xf", e), scalarReg("%mx"),
                scalarReg("%xf", e))));
            body.push_back(call(Spec::unary(
                OpKind::Exp, one, scalarReg("%xf", e),
                scalarReg("%xf", e))));
        }
        body.push_back(call(Spec::reduction(
            OpKind::Add, one,
            vecReg("%xf", perThreadN, ScalarType::Fp32),
            scalarReg("%partial"))));
        auto rsum = emitBlockAllReduce(blockSize, OpKind::Add,
                                       "%partial", "%sum", "%tmp",
                                       "%slots");
        body.insert(body.end(), rsum.begin(), rsum.end());
    }

    // Normalize and store.
    {
        diag::Scope storeScope("normalize-store");
        body.push_back(call(Spec::init(1.0, one, scalarReg("%one"))));
        body.push_back(call(Spec::binary(
            OpKind::Div, one, scalarReg("%one"), scalarReg("%sum"),
            scalarReg("%inv"))));
        for (int64_t e = 0; e < perThreadN; ++e)
            body.push_back(call(Spec::binary(
                OpKind::Mul, one, scalarReg("%xf", e), scalarReg("%inv"),
                scalarReg("%xf", e))));
        body.push_back(call(Spec::move(
            one, vecReg("%xf", perThreadN, ScalarType::Fp32),
            vecReg("%xh", perThreadN, ScalarType::Fp16))));
        for (int64_t e = 0; e < perThreadN; ++e) {
            TensorView dst("%g", outName, Layout(), ScalarType::Fp16,
                           MemorySpace::GL);
            body.push_back(call(Spec::move(
                one, scalarReg("%xh", e, ScalarType::Fp16),
                dst.offsetBy(add(base, constant(e))))));
        }
    }
    kernel.setBody(std::move(body));
    return kernel;
}

} // namespace ops
} // namespace graphene
