#include "ops/pointwise.h"

#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

namespace
{

constexpr int64_t kBlockSize = 256;
constexpr int64_t kVec = 8;

/** Shared scaffold: a flat fp16 kernel where each thread owns one
 *  8-element chunk; @p emitChunk receives the chunk base expression
 *  and appends the per-chunk statements. */
Kernel
flatKernel(const std::string &name, int64_t count,
           const std::function<void(std::vector<StmtPtr> &, ExprPtr)>
               &emitChunk)
{
    diag::Scope scope(name);
    GRAPHENE_CHECK(count % kVec == 0)
        << "pointwise kernels require a multiple of " << kVec
        << " elements, got " << count;
    const int64_t perBlock = kBlockSize * kVec;
    const int64_t grid = ceilDiv(count, perBlock);
    Kernel kernel(name, grid, kBlockSize);

    ExprPtr idx8 = mul(add(mul(bid(grid), constant(kBlockSize)),
                           tid(kBlockSize)),
                       constant(kVec));
    std::vector<StmtPtr> chunkBody;
    emitChunk(chunkBody, idx8);
    std::vector<StmtPtr> body;
    if (grid * perBlock == count) {
        body = std::move(chunkBody);
    } else {
        // Predicated tail (paper Section 3.4: partial tiles).
        body.push_back(ifStmt(lessThan(idx8, constant(count)),
                              std::move(chunkBody)));
    }
    kernel.setBody(std::move(body));
    return kernel;
}

TensorView
globalVec(const std::string &buffer, ExprPtr offset, int64_t count = kVec,
          ScalarType scalar = ScalarType::Fp16)
{
    TensorView v("%g", buffer,
                 count == 1 ? Layout() : Layout::vector(count), scalar,
                 MemorySpace::GL);
    return v.offsetBy(std::move(offset));
}

} // namespace

Kernel
buildUnaryPointwise(const GpuArch &arch, OpKind op, int64_t count,
                    const std::string &inName, const std::string &outName)
{
    (void)arch;
    Kernel kernel = flatKernel(
        "pw_" + opKindName(op), count,
        [&](std::vector<StmtPtr> &body, ExprPtr idx8) {
            auto one = perThread(kBlockSize);
            body.push_back(call(Spec::move(
                one, globalVec(inName, idx8),
                vecReg("%x", kVec, ScalarType::Fp16))));
            for (int64_t e = 0; e < kVec; ++e)
                body.push_back(call(Spec::unary(
                    op, one, scalarReg("%x", e, ScalarType::Fp16),
                    scalarReg("%x", e, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%x", kVec, ScalarType::Fp16),
                globalVec(outName, idx8))));
        });
    auto body = kernel.body();
    body.insert(body.begin(),
                alloc("%x", ScalarType::Fp16, MemorySpace::RF, kVec));
    kernel.setBody(body);
    kernel.addParam(TensorView::global(inName, Layout::vector(count),
                                       ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(outName, Layout::vector(count),
                                       ScalarType::Fp16), false);
    return kernel;
}

Kernel
buildBinaryPointwise(const GpuArch &arch, OpKind op, int64_t count,
                     const std::string &aName, const std::string &bName,
                     const std::string &outName)
{
    (void)arch;
    Kernel kernel = flatKernel(
        "pw_" + opKindName(op), count,
        [&](std::vector<StmtPtr> &body, ExprPtr idx8) {
            auto one = perThread(kBlockSize);
            body.push_back(call(Spec::move(
                one, globalVec(aName, idx8),
                vecReg("%x", kVec, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, globalVec(bName, idx8),
                vecReg("%y", kVec, ScalarType::Fp16))));
            for (int64_t e = 0; e < kVec; ++e)
                body.push_back(call(Spec::binary(
                    op, one, scalarReg("%x", e, ScalarType::Fp16),
                    scalarReg("%y", e, ScalarType::Fp16),
                    scalarReg("%x", e, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%x", kVec, ScalarType::Fp16),
                globalVec(outName, idx8))));
        });
    auto body = kernel.body();
    body.insert(body.begin(),
                alloc("%y", ScalarType::Fp16, MemorySpace::RF, kVec));
    body.insert(body.begin(),
                alloc("%x", ScalarType::Fp16, MemorySpace::RF, kVec));
    kernel.setBody(body);
    kernel.addParam(TensorView::global(aName, Layout::vector(count),
                                       ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(bName, Layout::vector(count),
                                       ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(outName, Layout::vector(count),
                                       ScalarType::Fp16), false);
    return kernel;
}

Kernel
buildScalarPointwise(const GpuArch &arch, OpKind op, double scalar,
                     int64_t count, const std::string &inName,
                     const std::string &outName)
{
    (void)arch;
    Kernel kernel = flatKernel(
        "pw_scalar_" + opKindName(op), count,
        [&](std::vector<StmtPtr> &body, ExprPtr idx8) {
            auto one = perThread(kBlockSize);
            body.push_back(call(Spec::move(
                one, globalVec(inName, idx8),
                vecReg("%x", kVec, ScalarType::Fp16))));
            for (int64_t e = 0; e < kVec; ++e)
                body.push_back(call(Spec::binaryScalar(
                    op, one, scalarReg("%x", e, ScalarType::Fp16),
                    scalar, scalarReg("%x", e, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%x", kVec, ScalarType::Fp16),
                globalVec(outName, idx8))));
        });
    auto body = kernel.body();
    body.insert(body.begin(),
                alloc("%x", ScalarType::Fp16, MemorySpace::RF, kVec));
    kernel.setBody(body);
    kernel.addParam(TensorView::global(inName, Layout::vector(count),
                                       ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(outName, Layout::vector(count),
                                       ScalarType::Fp16), false);
    return kernel;
}

Kernel
buildBiasAct(const GpuArch &arch, int64_t rows, int64_t cols, OpKind act,
             const std::string &inName, const std::string &biasName,
             const std::string &outName)
{
    (void)arch;
    GRAPHENE_CHECK(cols % kVec == 0) << "bias width must divide 8";
    const int64_t count = rows * cols;
    Kernel kernel = flatKernel(
        "pw_bias_" + opKindName(act), count,
        [&](std::vector<StmtPtr> &body, ExprPtr idx8) {
            auto one = perThread(kBlockSize);
            body.push_back(call(Spec::move(
                one, globalVec(inName, idx8),
                vecReg("%x", kVec, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, globalVec(biasName, mod(idx8, constant(cols))),
                vecReg("%b", kVec, ScalarType::Fp16))));
            for (int64_t e = 0; e < kVec; ++e)
                body.push_back(call(Spec::binary(
                    OpKind::Add, one,
                    scalarReg("%x", e, ScalarType::Fp16),
                    scalarReg("%b", e, ScalarType::Fp16),
                    scalarReg("%x", e, ScalarType::Fp16))));
            if (act != OpKind::Identity)
                for (int64_t e = 0; e < kVec; ++e)
                    body.push_back(call(Spec::unary(
                        act, one, scalarReg("%x", e, ScalarType::Fp16),
                        scalarReg("%x", e, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%x", kVec, ScalarType::Fp16),
                globalVec(outName, idx8))));
        });
    auto body = kernel.body();
    body.insert(body.begin(),
                alloc("%b", ScalarType::Fp16, MemorySpace::RF, kVec));
    body.insert(body.begin(),
                alloc("%x", ScalarType::Fp16, MemorySpace::RF, kVec));
    kernel.setBody(body);
    kernel.addParam(TensorView::global(
                        inName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(biasName, Layout::vector(cols),
                                       ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(
                        outName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), false);
    return kernel;
}

Kernel
buildRowReduce(const GpuArch &arch, OpKind op, int64_t rows, int64_t cols,
               double scale, const std::string &inName,
               const std::string &outName)
{
    (void)arch;
    diag::Scope rootScope("row_reduce_" + opKindName(op));
    const int64_t blockSize = 128;
    GRAPHENE_CHECK(cols % (blockSize * kVec) == 0)
        << "row reduce of width " << cols
        << " needs a multiple of " << blockSize * kVec;
    const int64_t chunksPerThread = cols / (blockSize * kVec);

    Kernel kernel("row_reduce_" + opKindName(op), rows, blockSize);
    kernel.addParam(TensorView::global(
                        inName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(outName, Layout::vector(rows),
                                       ScalarType::Fp32), false);

    auto one = perThread(blockSize);
    auto t = tid(blockSize);
    auto row = bid(rows);
    std::vector<StmtPtr> body = {
        alloc("%x", ScalarType::Fp16, MemorySpace::RF, kVec),
        alloc("%xf", ScalarType::Fp32, MemorySpace::RF, kVec),
        alloc("%partial", ScalarType::Fp32, MemorySpace::RF, 1),
        alloc("%chunkred", ScalarType::Fp32, MemorySpace::RF, 1),
        alloc("%result", ScalarType::Fp32, MemorySpace::RF, 1),
        alloc("%tmp", ScalarType::Fp32, MemorySpace::RF, 1),
        alloc("%slots", ScalarType::Fp32, MemorySpace::SH,
              blockSize / 32),
        call(Spec::init(reductionIdentity(op), one,
                        scalarReg("%partial"))),
    };
    for (int64_t c = 0; c < chunksPerThread; ++c) {
        ExprPtr colBase = mul(add(t, constant(c * blockSize)),
                              constant(kVec));
        ExprPtr off = add(mul(row, constant(cols)), colBase);
        body.push_back(call(Spec::move(
            one, globalVec(inName, off),
            vecReg("%x", kVec, ScalarType::Fp16))));
        body.push_back(call(Spec::move(
            one, vecReg("%x", kVec, ScalarType::Fp16),
            vecReg("%xf", kVec, ScalarType::Fp32))));
        body.push_back(call(Spec::reduction(
            op, one, vecReg("%xf", kVec, ScalarType::Fp32),
            scalarReg("%chunkred"))));
        body.push_back(call(Spec::binary(op, one, scalarReg("%partial"),
                                         scalarReg("%chunkred"),
                                         scalarReg("%partial"))));
    }
    auto reduce = emitBlockAllReduce(blockSize, op, "%partial",
                                     "%result", "%tmp", "%slots");
    body.insert(body.end(), reduce.begin(), reduce.end());
    if (scale != 1.0)
        body.push_back(call(Spec::binaryScalar(
            OpKind::Mul, one, scalarReg("%result"), scale,
            scalarReg("%result"))));
    body.push_back(ifStmt(
        lessThan(t, constant(1)),
        {call(Spec::move(one, scalarReg("%result"),
                         globalVec(outName, row, 1,
                                   ScalarType::Fp32)))}));
    kernel.setBody(std::move(body));
    return kernel;
}

Kernel
buildRowBroadcast(const GpuArch &arch, OpKind op, int64_t rows,
                  int64_t cols, const std::string &inName,
                  const std::string &rowVecName,
                  const std::string &outName)
{
    (void)arch;
    GRAPHENE_CHECK(cols % kVec == 0) << "width must divide 8";
    const int64_t count = rows * cols;
    Kernel kernel = flatKernel(
        "pw_rowbcast_" + opKindName(op), count,
        [&](std::vector<StmtPtr> &body, ExprPtr idx8) {
            auto one = perThread(kBlockSize);
            ExprPtr row = floorDiv(idx8, constant(cols));
            body.push_back(call(Spec::move(
                one, globalVec(inName, idx8),
                vecReg("%x", kVec, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%x", kVec, ScalarType::Fp16),
                vecReg("%xf", kVec, ScalarType::Fp32))));
            body.push_back(call(Spec::move(
                one, globalVec(rowVecName, row, 1, ScalarType::Fp32),
                scalarReg("%rv"))));
            for (int64_t e = 0; e < kVec; ++e)
                body.push_back(call(Spec::binary(
                    op, one, scalarReg("%xf", e), scalarReg("%rv"),
                    scalarReg("%xf", e))));
            body.push_back(call(Spec::move(
                one, vecReg("%xf", kVec, ScalarType::Fp32),
                vecReg("%x", kVec, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%x", kVec, ScalarType::Fp16),
                globalVec(outName, idx8))));
        });
    auto body = kernel.body();
    body.insert(body.begin(),
                alloc("%rv", ScalarType::Fp32, MemorySpace::RF, 1));
    body.insert(body.begin(),
                alloc("%xf", ScalarType::Fp32, MemorySpace::RF, kVec));
    body.insert(body.begin(),
                alloc("%x", ScalarType::Fp16, MemorySpace::RF, kVec));
    kernel.setBody(body);
    kernel.addParam(TensorView::global(
                        inName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(rowVecName, Layout::vector(rows),
                                       ScalarType::Fp32), true);
    kernel.addParam(TensorView::global(
                        outName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), false);
    return kernel;
}

Kernel
buildColBroadcast(const GpuArch &arch, OpKind op, int64_t rows,
                  int64_t cols, const std::string &inName,
                  const std::string &colVecName,
                  const std::string &outName)
{
    (void)arch;
    GRAPHENE_CHECK(cols % kVec == 0) << "width must divide 8";
    const int64_t count = rows * cols;
    Kernel kernel = flatKernel(
        "pw_colbcast_" + opKindName(op), count,
        [&](std::vector<StmtPtr> &body, ExprPtr idx8) {
            auto one = perThread(kBlockSize);
            body.push_back(call(Spec::move(
                one, globalVec(inName, idx8),
                vecReg("%x", kVec, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, globalVec(colVecName, mod(idx8, constant(cols))),
                vecReg("%cv", kVec, ScalarType::Fp16))));
            for (int64_t e = 0; e < kVec; ++e)
                body.push_back(call(Spec::binary(
                    op, one, scalarReg("%x", e, ScalarType::Fp16),
                    scalarReg("%cv", e, ScalarType::Fp16),
                    scalarReg("%x", e, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%x", kVec, ScalarType::Fp16),
                globalVec(outName, idx8))));
        });
    auto body = kernel.body();
    body.insert(body.begin(),
                alloc("%cv", ScalarType::Fp16, MemorySpace::RF, kVec));
    body.insert(body.begin(),
                alloc("%x", ScalarType::Fp16, MemorySpace::RF, kVec));
    kernel.setBody(body);
    kernel.addParam(TensorView::global(
                        inName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(colVecName, Layout::vector(cols),
                                       ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(
                        outName, Layout::rowMajor(IntTuple{rows, cols}),
                        ScalarType::Fp16), false);
    return kernel;
}

} // namespace ops
} // namespace graphene
