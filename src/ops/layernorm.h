/**
 * @file
 * Layernorm kernel generators (paper Fig. 13).
 *
 * Three fused shapes, mirroring the baselines of the paper's
 * experiment:
 *  - the single-pass fused kernel (one kernel per launch; sum and
 *    sum-of-squares reduced in one read of the row) with vectorized
 *    loads — the Graphene/Apex operating point;
 *  - the same kernel with scalar (non-vectorized) loads — the PyTorch
 *    built-in fused kernel stand-in;
 *  - a two-kernel split (row statistics, then apply) — the
 *    TorchScript-JIT stand-in.
 * The fully unfused PyTorch-eager pipeline is assembled from
 * ops/pointwise.h kernels by the TorchLike baseline engine.
 */

#ifndef GRAPHENE_OPS_LAYERNORM_H
#define GRAPHENE_OPS_LAYERNORM_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

struct LayernormConfig
{
    int64_t rows = 1024;
    int64_t cols = 1024; // the normalized (hidden) dimension
    double epsilon = 1e-5;
    bool vectorized = true; // 8-wide loads vs scalar loads
    std::string inName = "%x";
    std::string gammaName = "%gamma";
    std::string betaName = "%beta";
    std::string outName = "%y";
    /** Stats buffer (fp32 [rows*2], mean then inv-std) for the
     *  two-kernel variant. */
    std::string statsName = "%stats";
};

/** Single-pass fused kernel: out = (x - mean) * rsqrt(var + eps) *
 *  gamma + beta, one block per row. */
Kernel buildLayernormFused(const GpuArch &arch,
                           const LayernormConfig &cfg);

/** Kernel 1 of the two-kernel variant: writes mean and inv-std. */
Kernel buildLayernormStats(const GpuArch &arch,
                           const LayernormConfig &cfg);

/** Kernel 2 of the two-kernel variant: applies the normalization. */
Kernel buildLayernormApply(const GpuArch &arch,
                           const LayernormConfig &cfg);

/**
 * True if @p cfg satisfies the fused-kernel constraints: cols divides
 * the 128-thread block, and vectorized loads need 8-wide per-thread
 * row slices (cols % 1024 == 0).
 */
bool layernormConfigValid(const GpuArch &arch,
                          const LayernormConfig &cfg);

/**
 * The tunable space around @p seed (vectorized vs scalar loads),
 * filtered by layernormConfigValid; the seed is always candidates[0].
 */
std::vector<LayernormConfig>
layernormTuneSpace(const GpuArch &arch, const LayernormConfig &seed);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_LAYERNORM_H
