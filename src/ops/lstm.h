/**
 * @file
 * The fused (simplified) LSTM-cell kernel of paper Fig. 12:
 * out = relu(x * Wx + h * Wh + bias) — two independent GEMMs whose
 * results meet in the accumulators, plus the pointwise tail, all in a
 * single kernel.  The baselines run 5 kernels (two GEMMs, add, bias,
 * relu) or 2 cuBLASLt kernels (GEMM; accumulate-GEMM with fused
 * bias+relu).
 */

#ifndef GRAPHENE_OPS_LSTM_H
#define GRAPHENE_OPS_LSTM_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

struct FusedLstmConfig
{
    int64_t m = 2048; // batch
    int64_t n = 256;  // hidden (output) width
    int64_t k = 256;  // input width
    int64_t bm = 128;
    int64_t bn = 128;
    int64_t bk = 32;
    int64_t wm = 64;
    int64_t wn = 64;
    bool swizzle = true;
    std::string xName = "%x";   // [m, k]
    std::string hName = "%h";   // [m, k]
    std::string wxName = "%Wx"; // [k, n]
    std::string whName = "%Wh"; // [k, n]
    std::string biasName = "%bias"; // [n]
    std::string outName = "%out";   // [m, n]
};

Kernel buildFusedLstm(const GpuArch &arch, const FusedLstmConfig &cfg);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_LSTM_H
