#include "ops/fmha.h"

#include <cmath>

#include "ops/block_gemm.h"
#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

Kernel
buildFusedFmha(const GpuArch &arch, const FmhaConfig &cfg)
{
    diag::Scope rootScope("fused-fmha");
    const int64_t S = cfg.seq;
    const int64_t D = cfg.headDim;
    const int64_t QT = cfg.qTile;
    const int64_t KT = cfg.kTile;
    GRAPHENE_CHECK(S % KT == 0 && S % QT == 0)
        << "sequence length must divide the tiles";
    GRAPHENE_CHECK(D % 16 == 0 && D <= 128) << "head dim granularity";
    GRAPHENE_CHECK(QT == 64 && KT == 128)
        << "this generator is specialized for 64x128 tiles";
    const bool ampere = arch.hasLdmatrix;

    // Two block-level GEMMs sharing one 128-thread block.
    BlockGemm bg1(arch, QT, KT, 32, 64); // S = Q K^T  (64 x 128)
    BlockGemm bg2(arch, QT, D, 32, 32);  // O = P V    (64 x 64)
    bg2.accName = "%acc2";
    bg2.afragName = "%afrag2";
    bg2.bfragName = "%bfrag2";
    GRAPHENE_CHECK(bg1.blockSize() == bg2.blockSize())
        << "FMHA sub-GEMMs must agree on the block size";
    const int64_t blockSize = bg1.blockSize();

    const int64_t qTiles = S / QT;
    const int64_t kTiles = S / KT;
    const int64_t gridSize = cfg.batch * cfg.heads * qTiles;
    Kernel kernel("graphene_fused_fmha", gridSize, blockSize);
    const int64_t tensorElems = cfg.batch * cfg.heads * S * D;
    for (const auto &name : {cfg.qName, cfg.kName, cfg.vName})
        kernel.addParam(TensorView::global(name,
                                           Layout::vector(tensorElems),
                                           ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(cfg.oName,
                                       Layout::vector(tensorElems),
                                       ScalarType::Fp16), false);

    auto t = tid(blockSize);
    auto b = bid(gridSize);
    auto one = perThread(blockSize);
    ExprPtr bhIdx = floorDiv(b, constant(qTiles));
    ExprPtr qIdx = mod(b, constant(qTiles));
    ExprPtr headBase = mul(bhIdx, constant(S * D));
    ExprPtr qBase = add(headBase, mul(qIdx, constant(QT * D)));

    const Swizzle swQ = cfg.swizzle ? Swizzle(3, 3, 3) : Swizzle();
    const Swizzle swKV = !cfg.swizzle ? Swizzle()
        : cfg.handwrittenLayouts ? swQ
                                 : swQ.then(3, 3, 6);
    const Swizzle swS = swKV;
    SmemOperand qOp{"%qs", D, swQ};
    // K^T tile for bg1: [d, keys] on Ampere, [keys, d] on Volta.
    SmemOperand ktOp{"%kv", ampere ? KT : D, swKV};
    // V tile for bg2: [keys, d] on Ampere, [d, keys] on Volta.
    SmemOperand vOp{"%kv", ampere ? D : KT, swKV};
    SmemOperand sOp{"%sTile", S, swS};
    auto qsView = TensorView::shared(
        "%qs", Layout::rowMajor(IntTuple{QT, D}), ScalarType::Fp16, swQ);
    auto ktView = TensorView::shared(
        "%kv",
        ampere ? Layout::rowMajor(IntTuple{D, KT})
               : Layout::rowMajor(IntTuple{KT, D}),
        ScalarType::Fp16, swKV);
    auto vView = TensorView::shared(
        "%kv",
        ampere ? Layout::rowMajor(IntTuple{KT, D})
               : Layout::rowMajor(IntTuple{D, KT}),
        ScalarType::Fp16, swKV);
    auto sView = TensorView::shared(
        "%sTile", Layout::rowMajor(IntTuple{QT, S}), ScalarType::Fp16,
        swS);

    std::vector<StmtPtr> body;
    body.push_back(alloc("%qs", ScalarType::Fp16, MemorySpace::SH,
                         QT * D, swQ));
    body.push_back(alloc("%kv", ScalarType::Fp16, MemorySpace::SH,
                         KT * D, swKV));
    body.push_back(alloc("%sTile", ScalarType::Fp16, MemorySpace::SH,
                         QT * S, swS));
    body.push_back(alloc("%rowHalf", ScalarType::Fp32, MemorySpace::SH,
                         2 * QT));
    body.push_back(alloc("%rowSum", ScalarType::Fp32, MemorySpace::SH,
                         QT));
    body.push_back(alloc("%stg", ScalarType::Fp16, MemorySpace::RF, 8));
    for (auto &stmts : {bg1.allocFragments(), bg2.allocFragments()})
        body.insert(body.end(), stmts.begin(), stmts.end());
    body.push_back(alloc("%cvt", ScalarType::Fp16, MemorySpace::RF, 8));

    // ---------------------------------------------------- phase 0: Q -
    {
        diag::Scope phaseScope("stage-q");
        auto stage = stageTileToShared(arch, blockSize, cfg.qName, qBase,
                                       D, QT, D, qsView, "%stg");
        body.insert(body.end(), stage.begin(), stage.end());
        body.push_back(syncThreads());
    }

    // ------------------------------------------- phase 1: S = Q K^T -
    const double scale = 1.0 / std::sqrt(static_cast<double>(D));
    {
        diag::Scope phaseScope("qk-matmul");
        auto ktVar = variable("kt", kTiles);
        std::vector<StmtPtr> loop;
        ExprPtr kBase = add(headBase, mul(ktVar, constant(KT * D)));
        // Source K tile is [keys, d]; Ampere needs it transposed.
        auto stage = ampere
            ? stageTileToSharedTransposed(blockSize, cfg.kName, kBase, D,
                                          KT, D, ktView, "%stg")
            : stageTileToShared(arch, blockSize, cfg.kName, kBase, D, KT,
                                D, ktView, "%stg");
        loop.insert(loop.end(), stage.begin(), stage.end());
        loop.push_back(syncThreads());
        loop.push_back(bg1.initAcc());
        auto compute = bg1.tileCompute(qOp, constant(0), constant(0),
                                       ktOp, constant(0), constant(0),
                                       D);
        loop.insert(loop.end(), compute.begin(), compute.end());
        // Scale and park the scores in the shared score tile.
        bg1.forEachAccVector([&](ExprPtr mLocal, ExprPtr nLocal,
                                 int64_t accOff, int64_t width) {
            for (int64_t e = 0; e < width; ++e)
                loop.push_back(call(Spec::binaryScalar(
                    OpKind::Mul, one,
                    scalarReg(bg1.accName, accOff + e), scale,
                    scalarReg(bg1.accName, accOff + e))));
            loop.push_back(call(Spec::move(
                one, vecReg(bg1.accName, width, ScalarType::Fp32,
                            accOff),
                vecReg("%cvt", width, ScalarType::Fp16))));
            auto dst = sView
                           .index({mLocal,
                                   add(mul(ktVar, constant(KT)),
                                       nLocal)})
                           .withLayout(Layout::vector(width));
            loop.push_back(call(Spec::move(
                one, vecReg("%cvt", width, ScalarType::Fp16), dst)));
        });
        loop.push_back(syncThreads());
        body.push_back(forStmtUniform("kt", 0, kTiles, 1,
                                      std::move(loop)));
    }

    // -------------------------------------------- phase 2: softmax -
    // Thread t owns row (t % QT), half (t / QT) of the score tile:
    // serial max/sum over S/2 columns with 8-wide shared loads, halves
    // combined through two shared slots per row.
    {
        diag::Scope phaseScope("softmax");
        const int64_t halfCols = S / 2;
        GRAPHENE_CHECK(halfCols % 8 == 0) << "seq granularity";
        GRAPHENE_CHECK(blockSize == 2 * QT)
            << "softmax assignment assumes 128 threads";
        ExprPtr row = mod(t, constant(QT));
        ExprPtr half = floorDiv(t, constant(QT));
        ExprPtr colBase = mul(half, constant(halfCols));
        for (const char *r : {"%pmax", "%psum", "%tmp", "%other",
                              "%rmax", "%rsum"})
            body.push_back(alloc(r, ScalarType::Fp32, MemorySpace::RF,
                                 1));
        body.push_back(alloc("%xf", ScalarType::Fp32, MemorySpace::RF,
                             8));
        TensorView rowHalf("%rh", "%rowHalf", Layout(), ScalarType::Fp32,
                           MemorySpace::SH);
        TensorView rowSumB("%rs", "%rowSum", Layout(), ScalarType::Fp32,
                           MemorySpace::SH);

        // Pass 1: row max.
        body.push_back(call(Spec::init(-65504.0, one,
                                       scalarReg("%pmax"))));
        for (int64_t c = 0; c < halfCols / 8; ++c) {
            auto src = sView.index({row, add(colBase,
                                             constant(c * 8))})
                           .withLayout(Layout::vector(8));
            body.push_back(call(Spec::move(
                one, src, vecReg("%stg", 8, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%stg", 8, ScalarType::Fp16),
                vecReg("%xf", 8, ScalarType::Fp32))));
            body.push_back(call(Spec::reduction(
                OpKind::Max, one, vecReg("%xf", 8, ScalarType::Fp32),
                scalarReg("%tmp"))));
            body.push_back(call(Spec::binary(
                OpKind::Max, one, scalarReg("%pmax"), scalarReg("%tmp"),
                scalarReg("%pmax"))));
        }
        body.push_back(call(Spec::move(
            one, scalarReg("%pmax"),
            rowHalf.offsetBy(add(mul(half, constant(QT)), row)))));
        body.push_back(syncThreads());
        // Combine halves (both threads of a row do the same math).
        body.push_back(call(Spec::move(one, rowHalf.offsetBy(row),
                                       scalarReg("%rmax"))));
        body.push_back(call(Spec::move(
            one, rowHalf.offsetBy(add(constant(QT), row)),
            scalarReg("%other"))));
        body.push_back(call(Spec::binary(
            OpKind::Max, one, scalarReg("%rmax"), scalarReg("%other"),
            scalarReg("%rmax"))));
        body.push_back(syncThreads());

        // Pass 2: exponentiate in place and accumulate the row sum.
        body.push_back(call(Spec::init(0.0, one, scalarReg("%psum"))));
        for (int64_t c = 0; c < halfCols / 8; ++c) {
            auto tileAt = sView.index({row, add(colBase,
                                                constant(c * 8))})
                              .withLayout(Layout::vector(8));
            body.push_back(call(Spec::move(
                one, tileAt, vecReg("%stg", 8, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%stg", 8, ScalarType::Fp16),
                vecReg("%xf", 8, ScalarType::Fp32))));
            for (int64_t e = 0; e < 8; ++e) {
                body.push_back(call(Spec::binary(
                    OpKind::Sub, one, scalarReg("%xf", e),
                    scalarReg("%rmax"), scalarReg("%xf", e))));
                body.push_back(call(Spec::unary(
                    OpKind::Exp, one, scalarReg("%xf", e),
                    scalarReg("%xf", e))));
            }
            body.push_back(call(Spec::reduction(
                OpKind::Add, one, vecReg("%xf", 8, ScalarType::Fp32),
                scalarReg("%tmp"))));
            body.push_back(call(Spec::binary(
                OpKind::Add, one, scalarReg("%psum"), scalarReg("%tmp"),
                scalarReg("%psum"))));
            body.push_back(call(Spec::move(
                one, vecReg("%xf", 8, ScalarType::Fp32),
                vecReg("%stg", 8, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%stg", 8, ScalarType::Fp16), tileAt)));
        }
        body.push_back(call(Spec::move(
            one, scalarReg("%psum"),
            rowHalf.offsetBy(add(mul(half, constant(QT)), row)))));
        body.push_back(syncThreads());
        body.push_back(call(Spec::move(one, rowHalf.offsetBy(row),
                                       scalarReg("%rsum"))));
        body.push_back(call(Spec::move(
            one, rowHalf.offsetBy(add(constant(QT), row)),
            scalarReg("%other"))));
        body.push_back(call(Spec::binary(
            OpKind::Add, one, scalarReg("%rsum"), scalarReg("%other"),
            scalarReg("%rsum"))));
        // Publish the row sums for the epilogue threads.
        body.push_back(ifStmt(
            lessThan(half, constant(1)),
            {call(Spec::move(one, scalarReg("%rsum"),
                             rowSumB.offsetBy(row)))}));
        body.push_back(syncThreads());
    }

    // ---------------------------------------------- phase 3: O = P V -
    {
        diag::Scope phaseScope("pv-matmul");
        body.push_back(bg2.initAcc());
        auto vtVar = variable("vt", kTiles);
        std::vector<StmtPtr> loop;
        ExprPtr vBase = add(headBase, mul(vtVar, constant(KT * D)));
        auto stage = ampere
            ? stageTileToShared(arch, blockSize, cfg.vName, vBase, D, KT,
                                D, vView, "%stg")
            : stageTileToSharedTransposed(blockSize, cfg.vName, vBase, D,
                                          KT, D, vView, "%stg");
        loop.insert(loop.end(), stage.begin(), stage.end());
        loop.push_back(syncThreads());
        auto compute = bg2.tileCompute(sOp, constant(0),
                                       mul(vtVar, constant(KT)), vOp,
                                       constant(0), constant(0), KT);
        loop.insert(loop.end(), compute.begin(), compute.end());
        loop.push_back(syncThreads());
        body.push_back(forStmtUniform("vt", 0, kTiles, 1,
                                      std::move(loop)));
    }

    // ------------------------------------- phase 4: scale and store -
    {
        diag::Scope phaseScope("store-output");
        body.push_back(alloc("%inv", ScalarType::Fp32, MemorySpace::RF,
                             1));
        body.push_back(alloc("%onef", ScalarType::Fp32, MemorySpace::RF,
                             1));
        TensorView rowSumB("%rs", "%rowSum", Layout(), ScalarType::Fp32,
                           MemorySpace::SH);
        body.push_back(call(Spec::init(1.0, one, scalarReg("%onef"))));
        bg2.forEachAccVector([&](ExprPtr mLocal, ExprPtr nLocal,
                                 int64_t accOff, int64_t width) {
            body.push_back(call(Spec::move(
                one, rowSumB.offsetBy(mLocal), scalarReg("%inv"))));
            body.push_back(call(Spec::binary(
                OpKind::Div, one, scalarReg("%onef"), scalarReg("%inv"),
                scalarReg("%inv"))));
            for (int64_t e = 0; e < width; ++e)
                body.push_back(call(Spec::binary(
                    OpKind::Mul, one,
                    scalarReg(bg2.accName, accOff + e),
                    scalarReg("%inv"),
                    scalarReg(bg2.accName, accOff + e))));
            body.push_back(call(Spec::move(
                one, vecReg(bg2.accName, width, ScalarType::Fp32,
                            accOff),
                vecReg("%cvt", width, ScalarType::Fp16))));
            TensorView dst("%og", cfg.oName, Layout::vector(width),
                           ScalarType::Fp16, MemorySpace::GL);
            dst = dst.offsetBy(add(qBase,
                                   add(mul(mLocal, constant(D)),
                                       nLocal)));
            body.push_back(call(Spec::move(
                one, vecReg("%cvt", width, ScalarType::Fp16), dst)));
        });
    }

    kernel.setBody(std::move(body));
    // Compulsory traffic: Q, K, V read once per query tile that shares
    // the head (K/V re-read per query tile; L2 may catch some of it,
    // but charge it — the unfused baseline also re-reads them plus the
    // full score tensor twice).
    kernel.setDramBytesHint(
        2.0 * cfg.batch * cfg.heads
        * (S * D /*Q*/ + qTiles * 2 * S * D /*K,V*/ + S * D /*O*/));
    return kernel;
}

bool
fmhaConfigValid(const GpuArch &arch, const FmhaConfig &cfg)
{
    (void)arch;
    if (cfg.batch <= 0 || cfg.heads <= 0)
        return false;
    // The generator is specialized: 64x128 tiles, and the P*V
    // sub-GEMM's block size only matches for a 64-wide head.
    if (cfg.qTile != 64 || cfg.kTile != 128 || cfg.headDim != 64)
        return false;
    if (cfg.seq <= 0 || cfg.seq % cfg.kTile != 0
        || cfg.seq % cfg.qTile != 0)
        return false;
    return true;
}

std::vector<FmhaConfig>
fmhaTuneSpace(const GpuArch &arch, const FmhaConfig &seed)
{
    std::vector<FmhaConfig> out;
    out.push_back(seed);
    for (int sw = 1; sw >= 0; --sw)
        for (int hand = 0; hand <= 1; ++hand) {
            FmhaConfig c = seed;
            c.swizzle = sw != 0;
            c.handwrittenLayouts = hand != 0;
            if (!fmhaConfigValid(arch, c))
                continue;
            if (c.swizzle == seed.swizzle
                && c.handwrittenLayouts == seed.handwrittenLayouts)
                continue;
            out.push_back(c);
        }
    return out;
}

} // namespace ops
} // namespace graphene
