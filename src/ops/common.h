/**
 * @file
 * Shared helpers for the kernel generators.
 */

#ifndef GRAPHENE_OPS_COMMON_H
#define GRAPHENE_OPS_COMMON_H

#include "arch/gpu_arch.h"
#include "ir/kernel.h"

namespace graphene
{
namespace ops
{

/** Execution group of a single thread (per-thread specs). */
ThreadGroup perThread(int64_t blockSize);

/** Execution group of one warp (collective warp-wide specs). */
ThreadGroup perWarp(int64_t blockSize);

/** Execution group of one Volta quad-pair: [(4,2):(1,16)]. */
ThreadGroup perQuadPair(int64_t blockSize);

/** The thread-index variable with its extent. */
ExprPtr tid(int64_t blockSize);

/** The block-index variable with its extent. */
ExprPtr bid(int64_t gridSize);

/**
 * Statements staging a [rows x cols] fp16 tile from global to shared
 * memory with 8-wide vector copies spread across the block (one
 * cp.async per chunk on architectures that support it, else a register
 * round-trip).
 *
 * @param srcBase   element offset of the tile's (0,0) in the global
 *                  buffer (may reference bid / loop variables)
 * @param srcBuffer global buffer name
 * @param srcRowStride row stride of the global tensor
 * @param dstView   a shared-memory view of shape [rows, cols]
 *                  (row-major; may be swizzled)
 * @param stageRegs name of a per-thread staging register buffer of 8
 *                  fp16 (must be allocated by the caller; unused when
 *                  cp.async is available)
 */
std::vector<StmtPtr> stageTileToShared(
    const GpuArch &arch, int64_t blockSize, const std::string &srcBuffer,
    ExprPtr srcBase, int64_t srcRowStride, int64_t rows, int64_t cols,
    const TensorView &dstView, const std::string &stageRegs,
    /**
     * Partial tiles (paper Section 3.4): when non-null, only rows with
     * local index < rowLimit are valid; out-of-bounds rows are filled
     * from @p zeroRegs (a zero-initialized 8-element fp16 register
     * buffer the caller provides) instead of loaded.
     */
    ExprPtr rowLimit = nullptr, const std::string &zeroRegs = "");

/**
 * Stage a [rows x cols] fp16 global tile *transposed* into shared
 * memory: dstView has shape [cols, rows].  Global reads are coalesced
 * 8-wide vectors; shared stores are scalar (the transpose).  Requires
 * a per-thread staging register buffer of 8 fp16.
 */
std::vector<StmtPtr> stageTileToSharedTransposed(
    int64_t blockSize, const std::string &srcBuffer, ExprPtr srcBase,
    int64_t srcRowStride, int64_t rows, int64_t cols,
    const TensorView &dstView, const std::string &stageRegs);

/**
 * Statements reducing a per-thread fp32 scalar register across the
 * whole block, leaving the result in @p resultReg of *every* thread:
 * 5 warp shuffle rounds, one shared slot per warp, a barrier, and a
 * serial reduce of the warp partials.
 *
 * @param partialReg  per-thread fp32 input register (1 element); it is
 *                    clobbered
 * @param resultReg   per-thread fp32 output register (1 element)
 * @param tmpReg      fp32 scratch register (1 element)
 * @param smemName    fp32 shared buffer with blockSize/32 slots (the
 *                    caller allocates it)
 */
std::vector<StmtPtr> emitBlockAllReduce(int64_t blockSize, OpKind op,
                                        const std::string &partialReg,
                                        const std::string &resultReg,
                                        const std::string &tmpReg,
                                        const std::string &smemName);

/** A one-element fp32 register view over @p buffer at @p offset. */
TensorView scalarReg(const std::string &buffer, int64_t offset = 0,
                     ScalarType scalar = ScalarType::Fp32);

/** A count-element register view over @p buffer at @p offset. */
TensorView vecReg(const std::string &buffer, int64_t count,
                  ScalarType scalar, int64_t offset = 0);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_COMMON_H
