#include "ops/block_gemm.h"

#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

BlockGemm::BlockGemm(const GpuArch &arch, int64_t mTile, int64_t nTile,
                     int64_t wm, int64_t wn)
    : arch_(arch), ampere_(arch.hasLdmatrix), mTile_(mTile),
      nTile_(nTile), wm_(wm), wn_(wn)
{
    GRAPHENE_CHECK(mTile % wm == 0 && nTile % wn == 0)
        << "warp tile " << wm << "x" << wn
        << " must divide the block tile " << mTile << "x" << nTile;
    if (ampere_) {
        GRAPHENE_CHECK(wm % 16 == 0 && wn % 16 == 0)
            << "Ampere warp tile must be a multiple of 16x16";
    } else {
        GRAPHENE_CHECK(wm % 32 == 0 && wn % 8 == 0)
            << "Volta warp tile must be a multiple of 32x8";
    }
    warpsM_ = mTile / wm;
    warpsN_ = nTile / wn;
    fragsM_ = ampere_ ? wm / 16 : 0;
    fragsN_ = wn / 8;
    stripsPerQp_ = ampere_ ? 0 : wm / 32;
}

int64_t
BlockGemm::accCount() const
{
    return ampere_ ? fragsM_ * fragsN_ * 4 : stripsPerQp_ * fragsN_ * 8;
}

ExprPtr
BlockGemm::warpM() const
{
    auto warpId = floorDiv(tid(blockSize()), constant(32));
    return mod(warpId, constant(warpsM_));
}

ExprPtr
BlockGemm::warpN() const
{
    auto warpId = floorDiv(tid(blockSize()), constant(32));
    return floorDiv(warpId, constant(warpsM_));
}

ExprPtr
BlockGemm::laneId() const
{
    return mod(tid(blockSize()), constant(32));
}

std::vector<StmtPtr>
BlockGemm::allocFragments() const
{
    diag::Scope scope("alloc-fragments");
    std::vector<StmtPtr> out;
    out.push_back(alloc(accName, ScalarType::Fp32, MemorySpace::RF,
                        accCount()));
    out.push_back(alloc(afragName, ScalarType::Fp16, MemorySpace::RF,
                        ampere_ ? fragsM_ * 8 : stripsPerQp_ * 8));
    out.push_back(alloc(bfragName, ScalarType::Fp16, MemorySpace::RF,
                        ampere_ ? (wn_ / 16) * 8 : fragsN_ * 8));
    return out;
}

StmtPtr
BlockGemm::initAcc() const
{
    diag::Scope scope("init-acc");
    TensorView acc("%accv", accName, Layout::vector(accCount()),
                   ScalarType::Fp32, MemorySpace::RF);
    return call(Spec::init(0.0, perThread(blockSize()), acc));
}

namespace
{

TensorView
regs(const std::string &buf, int64_t count, ScalarType scalar,
     int64_t offset)
{
    TensorView v("%v", buf, Layout::vector(count), scalar,
                 MemorySpace::RF);
    if (offset != 0)
        v = v.offsetBy(constant(offset));
    return v;
}

TensorView
smemVec(const SmemOperand &op, int64_t count, ExprPtr row, ExprPtr col)
{
    TensorView v("%sv", op.buffer,
                 count == 1 ? Layout() : Layout::vector(count),
                 ScalarType::Fp16, MemorySpace::SH, op.swizzle);
    return v.offsetBy(add(mul(row, constant(op.rowStride)), col));
}

} // namespace

std::vector<StmtPtr>
BlockGemm::tileCompute(const SmemOperand &a, ExprPtr aRow0, ExprPtr aCol0,
                       const SmemOperand &b, ExprPtr bRow0, ExprPtr bCol0,
                       int64_t kDepth, bool disableLdmatrix) const
{
    diag::Scope scope("tile-compute");
    GRAPHENE_CHECK(kDepth % kStep() == 0)
        << "k depth " << kDepth << " not a multiple of " << kStep();
    const int64_t blockSz = blockSize();
    auto one = perThread(blockSz);
    auto warpG = perWarp(blockSz);
    auto lane = laneId();
    auto wM = warpM();
    auto wN = warpN();

    std::vector<StmtPtr> out;

    if (ampere_) {
        for (int64_t k16 = 0; k16 < kDepth / 16; ++k16) {
            // A fragments: ldmatrix.x4 per 16-row m-block.
            for (int64_t fi = 0; fi < fragsM_; ++fi) {
                ExprPtr row = add(
                    aRow0,
                    add(add(mul(wM, constant(wm_)), constant(fi * 16)),
                        add(mul(mod(floorDiv(lane, constant(8)),
                                    constant(2)),
                                constant(8)),
                            mod(lane, constant(8)))));
                ExprPtr col = add(
                    aCol0,
                    add(constant(k16 * 16),
                        mul(floorDiv(lane, constant(16)), constant(8))));
                auto dst = regs(afragName, 8, ScalarType::Fp16, fi * 8);
                if (disableLdmatrix) {
                    for (int64_t v = 0; v < 8; ++v) {
                        ExprPtr fm = add(
                            aRow0,
                            add(add(mul(wM, constant(wm_)),
                                    constant(fi * 16
                                             + 8 * ((v / 2) % 2))),
                                floorDiv(lane, constant(4))));
                        ExprPtr fk = add(
                            aCol0,
                            add(constant(k16 * 16 + v % 2 + 8 * (v / 4)),
                                mul(mod(lane, constant(4)),
                                    constant(2))));
                        out.push_back(call(Spec::move(
                            one, smemVec(a, 1, fm, fk),
                            regs(afragName, 1, ScalarType::Fp16,
                                 fi * 8 + v))));
                    }
                } else {
                    out.push_back(call(Spec::move(
                        warpG, smemVec(a, 8, row, col), dst)));
                }
            }
            // B fragments: ldmatrix.x4.trans per 16-wide n-block.
            for (int64_t fj = 0; fj < wn_ / 16; ++fj) {
                ExprPtr row = add(
                    bRow0,
                    add(constant(k16 * 16),
                        add(mul(mod(floorDiv(lane, constant(8)),
                                    constant(2)),
                                constant(8)),
                            mod(lane, constant(8)))));
                ExprPtr col = add(
                    bCol0,
                    add(add(mul(wN, constant(wn_)), constant(fj * 16)),
                        mul(floorDiv(lane, constant(16)),
                            constant(8))));
                auto dst = regs(bfragName, 8, ScalarType::Fp16, fj * 8);
                if (disableLdmatrix) {
                    for (int64_t v = 0; v < 8; ++v) {
                        ExprPtr fk = add(
                            bRow0,
                            add(constant(k16 * 16 + 8 * ((v / 2) % 2)
                                         + v % 2),
                                mul(mod(lane, constant(4)),
                                    constant(2))));
                        ExprPtr fn = add(
                            bCol0,
                            add(add(mul(wN, constant(wn_)),
                                    constant(fj * 16 + 8 * (v / 4))),
                                floorDiv(lane, constant(4))));
                        out.push_back(call(Spec::move(
                            one, smemVec(b, 1, fk, fn),
                            regs(bfragName, 1, ScalarType::Fp16,
                                 fj * 8 + v))));
                    }
                } else {
                    auto mv = Spec::move(warpG, smemVec(b, 8, row, col),
                                         dst);
                    mv->setAtomicHint("trans");
                    out.push_back(call(mv));
                }
            }
            // MMA grid.
            for (int64_t mi = 0; mi < fragsM_; ++mi)
                for (int64_t nj = 0; nj < fragsN_; ++nj)
                    out.push_back(call(Spec::matmul(
                        warpG,
                        regs(afragName, 8, ScalarType::Fp16, mi * 8),
                        regs(bfragName, 4, ScalarType::Fp16,
                             (nj / 2) * 8 + 4 * (nj % 2)),
                        regs(accName, 4, ScalarType::Fp32,
                             (mi * fragsN_ + nj) * 4))));
        }
    } else {
        auto qpG = perQuadPair(blockSz);
        ExprPtr qpIdx = floorDiv(mod(lane, constant(16)), constant(4));
        ExprPtr qpLane = add(mod(lane, constant(4)),
                             mul(floorDiv(lane, constant(16)),
                                 constant(4)));
        for (int64_t k8 = 0; k8 < kDepth / 8; ++k8) {
            for (int64_t s = 0; s < stripsPerQp_; ++s) {
                ExprPtr aRow = add(
                    aRow0,
                    add(mul(wM, constant(wm_)),
                        add(mul(add(mul(qpIdx, constant(stripsPerQp_)),
                                    constant(s)),
                                constant(8)),
                            qpLane)));
                out.push_back(call(Spec::move(
                    one,
                    smemVec(a, 8, aRow, add(aCol0, constant(k8 * 8))),
                    regs(afragName, 8, ScalarType::Fp16, s * 8))));
            }
            for (int64_t nj = 0; nj < fragsN_; ++nj) {
                // b operand row within the transposed [n, k] tensor.
                ExprPtr bRow = add(
                    bRow0,
                    add(mul(wN, constant(wn_)),
                        add(constant(nj * 8), qpLane)));
                out.push_back(call(Spec::move(
                    one,
                    smemVec(b, 8, bRow, add(bCol0, constant(k8 * 8))),
                    regs(bfragName, 8, ScalarType::Fp16, nj * 8))));
            }
            for (int64_t kk = 0; kk < 2; ++kk)
                for (int64_t s = 0; s < stripsPerQp_; ++s)
                    for (int64_t nj = 0; nj < fragsN_; ++nj)
                        out.push_back(call(Spec::matmul(
                            qpG,
                            regs(afragName, 4, ScalarType::Fp16,
                                 s * 8 + 4 * kk),
                            regs(bfragName, 4, ScalarType::Fp16,
                                 nj * 8 + 4 * kk),
                            regs(accName, 8, ScalarType::Fp32,
                                 (s * fragsN_ + nj) * 8))));
        }
    }
    return out;
}

void
BlockGemm::forEachAccVector(
    const std::function<void(ExprPtr, ExprPtr, int64_t, int64_t)> &fn)
    const
{
    auto lane = laneId();
    auto wM = warpM();
    auto wN = warpN();
    if (ampere_) {
        for (int64_t mi = 0; mi < fragsM_; ++mi)
            for (int64_t nj = 0; nj < fragsN_; ++nj)
                for (int64_t h = 0; h < 2; ++h) {
                    const int64_t accOff = (mi * fragsN_ + nj) * 4
                        + 2 * h;
                    ExprPtr mLocal = add(
                        mul(wM, constant(wm_)),
                        add(constant(mi * 16 + 8 * h),
                            floorDiv(lane, constant(4))));
                    ExprPtr nLocal = add(
                        mul(wN, constant(wn_)),
                        add(constant(nj * 8),
                            mul(mod(lane, constant(4)), constant(2))));
                    fn(mLocal, nLocal, accOff, 2);
                }
    } else {
        ExprPtr qpIdx = floorDiv(mod(lane, constant(16)), constant(4));
        ExprPtr qpLane = add(mod(lane, constant(4)),
                             mul(floorDiv(lane, constant(16)),
                                 constant(4)));
        for (int64_t s = 0; s < stripsPerQp_; ++s) {
            ExprPtr mLocal = add(
                mul(wM, constant(wm_)),
                add(mul(add(mul(qpIdx, constant(stripsPerQp_)),
                            constant(s)),
                        constant(8)),
                    qpLane));
            for (int64_t nj = 0; nj < fragsN_; ++nj) {
                ExprPtr nLocal = add(mul(wN, constant(wn_)),
                                     constant(nj * 8));
                fn(mLocal, nLocal, (s * fragsN_ + nj) * 8, 8);
            }
        }
    }
}

} // namespace ops
} // namespace graphene
