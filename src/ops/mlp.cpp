#include "ops/mlp.h"

#include "ops/block_gemm.h"
#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

Kernel
buildFusedMlp(const GpuArch &arch, const FusedMlpConfig &cfg)
{
    diag::Scope rootScope("fused-mlp");
    const int64_t w = cfg.width;
    const int64_t mt = cfg.mTile;
    GRAPHENE_CHECK(w % 16 == 0 && w <= 128)
        << "fused MLP supports widths that are multiples of 16 up to "
        << "128 (all activations must fit in shared memory)";
    GRAPHENE_CHECK(cfg.m % mt == 0) << "batch must divide the M tile";
    GRAPHENE_CHECK(cfg.layers >= 1) << "need at least one layer";

    const int64_t wn = w >= 64 ? 64 : w;
    BlockGemm bg(arch, mt, w, 32, wn);
    const int64_t blockSize = bg.blockSize();
    const int64_t grid = cfg.m / mt;
    const bool ampere = arch.hasLdmatrix;

    Kernel kernel("graphene_fused_mlp", grid, blockSize);
    kernel.addParam(TensorView::global(
                        cfg.xName, Layout::rowMajor(IntTuple{cfg.m, w}),
                        ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(
                        cfg.wName, Layout::vector(cfg.layers * w * w),
                        ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(
                        cfg.biasName, Layout::vector(cfg.layers * w),
                        ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(
                        cfg.outName, Layout::rowMajor(IntTuple{cfg.m, w}),
                        ScalarType::Fp16), false);

    auto t = tid(blockSize);
    auto b = bid(grid);
    auto one = perThread(blockSize);

    const Swizzle swA = cfg.swizzle
        ? Swizzle(3, 3, 3).then(3, 3, 6) : Swizzle();
    const Swizzle swW = swA;
    SmemOperand act0Op{"%act0", w, swA};
    SmemOperand act1Op{"%act1", w, swA};
    SmemOperand wOp{"%w", ampere ? w : w, swW};
    auto act0View = TensorView::shared(
        "%act0", Layout::rowMajor(IntTuple{mt, w}), ScalarType::Fp16,
        swA);
    auto act1View = TensorView::shared(
        "%act1", Layout::rowMajor(IntTuple{mt, w}), ScalarType::Fp16,
        swA);
    auto wView = TensorView::shared(
        "%w", Layout::rowMajor(IntTuple{w, w}), ScalarType::Fp16, swW);

    std::vector<StmtPtr> body;
    body.push_back(alloc("%act0", ScalarType::Fp16, MemorySpace::SH,
                         mt * w, swA));
    body.push_back(alloc("%act1", ScalarType::Fp16, MemorySpace::SH,
                         mt * w, swA));
    body.push_back(alloc("%w", ScalarType::Fp16, MemorySpace::SH, w * w,
                         swW));
    body.push_back(alloc("%stg", ScalarType::Fp16, MemorySpace::RF, 8));
    auto fragAllocs = bg.allocFragments();
    body.insert(body.end(), fragAllocs.begin(), fragAllocs.end());
    body.push_back(alloc("%cvt", ScalarType::Fp16, MemorySpace::RF,
                         bg.accVectorWidth()));
    body.push_back(alloc("%bh", ScalarType::Fp16, MemorySpace::RF, 1));
    body.push_back(alloc("%bhf", ScalarType::Fp32, MemorySpace::RF, 1));

    // Stage the input activations.
    {
        diag::Scope stageScope("stage-input");
        ExprPtr base = mul(b, constant(mt * w));
        auto stage = stageTileToShared(arch, blockSize, cfg.xName, base,
                                       w, mt, w, act0View, "%stg");
        body.insert(body.end(), stage.begin(), stage.end());
        body.push_back(syncThreads());
    }

    // One layer: actIn -> actOut with weights/bias of @p layerExpr.
    auto emitLayer = [&](std::vector<StmtPtr> &out, ExprPtr layerExpr,
                         const SmemOperand &aOp,
                         const TensorView &dstAct,
                         const std::string &layerLabel) {
        diag::Scope layerScope(layerLabel);
        // Stage this layer's weights.
        ExprPtr wBase = mul(layerExpr, constant(w * w));
        if (ampere) {
            auto stage = stageTileToShared(arch, blockSize, cfg.wName,
                                           wBase, w, w, w, wView,
                                           "%stg");
            out.insert(out.end(), stage.begin(), stage.end());
        } else {
            auto stage = stageTileToSharedTransposed(
                blockSize, cfg.wName, wBase, w, w, w, wView, "%stg");
            out.insert(out.end(), stage.begin(), stage.end());
        }
        out.push_back(syncThreads());
        out.push_back(bg.initAcc());
        auto compute = bg.tileCompute(aOp, constant(0), constant(0), wOp,
                                      constant(0), constant(0), w);
        out.insert(out.end(), compute.begin(), compute.end());
        out.push_back(syncThreads());
        // Epilogue: bias + relu, convert, store into the next smem
        // activation tile.
        TensorView biasG("%bg", cfg.biasName, Layout(), ScalarType::Fp16,
                         MemorySpace::GL);
        bg.forEachAccVector([&](ExprPtr mLocal, ExprPtr nLocal,
                                int64_t accOff, int64_t width) {
            for (int64_t e = 0; e < width; ++e) {
                ExprPtr nExpr = add(nLocal, constant(e));
                auto accE = scalarReg("%acc", accOff + e);
                out.push_back(call(Spec::move(
                    one,
                    biasG.offsetBy(add(mul(layerExpr, constant(w)),
                                       nExpr)),
                    scalarReg("%bh", 0, ScalarType::Fp16))));
                out.push_back(call(Spec::move(
                    one, scalarReg("%bh", 0, ScalarType::Fp16),
                    scalarReg("%bhf"))));
                out.push_back(call(Spec::binary(
                    OpKind::Add, one, accE, scalarReg("%bhf"), accE)));
                out.push_back(call(Spec::unary(OpKind::Relu, one, accE,
                                               accE)));
            }
            out.push_back(call(Spec::move(
                one, vecReg("%acc", width, ScalarType::Fp32, accOff),
                vecReg("%cvt", width, ScalarType::Fp16))));
            auto dst = dstAct.index({mLocal, nLocal})
                           .withLayout(Layout::vector(width));
            out.push_back(call(Spec::move(
                one, vecReg("%cvt", width, ScalarType::Fp16), dst)));
        });
        out.push_back(syncThreads());
    };

    // Layers, two per loop iteration so the ping-pong buffers alternate
    // statically and the timing model can extrapolate.
    const int64_t pairs = cfg.layers / 2;
    if (pairs > 0) {
        auto l2 = variable("l2", pairs);
        std::vector<StmtPtr> pairBody;
        emitLayer(pairBody, mul(l2, constant(2)), act0Op, act1View,
                  "layer-even");
        emitLayer(pairBody, add(mul(l2, constant(2)), constant(1)),
                  act1Op, act0View, "layer-odd");
        body.push_back(forStmtUniform("l2", 0, pairs, 1,
                                      std::move(pairBody)));
    }
    const bool odd = cfg.layers % 2 != 0;
    if (odd)
        emitLayer(body, constant(cfg.layers - 1), act0Op, act1View,
                  "layer-last");

    // Copy the final activations to global memory.
    {
        diag::Scope storeScope("store-output");
        const TensorView &finalAct = odd ? act1View : act0View;
        const int64_t chunks = mt * w / 8 / blockSize;
        for (int64_t i = 0; i < chunks; ++i) {
            ExprPtr chunk = add(t, constant(i * blockSize));
            ExprPtr row = floorDiv(chunk, constant(w / 8));
            ExprPtr col = mul(mod(chunk, constant(w / 8)), constant(8));
            auto src = finalAct.index({row, col})
                           .withLayout(Layout::vector(8));
            TensorView dst("%yg", cfg.outName, Layout::vector(8),
                           ScalarType::Fp16, MemorySpace::GL);
            dst = dst.offsetBy(add(mul(b, constant(mt * w)),
                                   add(mul(row, constant(w)), col)));
            body.push_back(call(Spec::move(
                one, src, vecReg("%stg", 8, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, vecReg("%stg", 8, ScalarType::Fp16), dst)));
        }
    }

    kernel.setBody(std::move(body));
    kernel.setDramBytesHint(
        2.0 * (2 * cfg.m * w + cfg.layers * (w * w + w)));
    return kernel;
}

bool
mlpConfigValid(const GpuArch &arch, const FusedMlpConfig &cfg)
{
    (void)arch;
    const int64_t w = cfg.width;
    const int64_t mt = cfg.mTile;
    if (w <= 0 || mt <= 0 || cfg.m <= 0 || cfg.layers < 1)
        return false;
    if (w % 16 != 0 || w > 128)
        return false;
    if (cfg.m % mt != 0 || mt % 32 != 0)
        return false;
    // The derived block size must evenly cover the 8-wide staging and
    // output-store chunks of one mt x w activation tile.
    const int64_t wn = w >= 64 ? 64 : w;
    const int64_t blockSize = (mt / 32) * (w / wn) * 32;
    if (blockSize > 1024 || (mt * w / 8) % blockSize != 0)
        return false;
    return true;
}

std::vector<FusedMlpConfig>
mlpTuneSpace(const GpuArch &arch, const FusedMlpConfig &seed)
{
    std::vector<FusedMlpConfig> out;
    out.push_back(seed);
    for (int64_t mt : {32, 64, 128, 256})
        for (int sw = 1; sw >= 0; --sw) {
            FusedMlpConfig c = seed;
            c.mTile = mt;
            c.swizzle = sw != 0;
            if (!mlpConfigValid(arch, c))
                continue;
            if (c.mTile == seed.mTile && c.swizzle == seed.swizzle)
                continue;
            out.push_back(c);
        }
    return out;
}

} // namespace ops
} // namespace graphene
