/**
 * @file
 * Reusable warp-level tensor-core GEMM building block.
 *
 * A BlockGemm describes the geometry of one thread-block-level matrix
 * multiply whose operands live in shared memory: warp tiling, fragment
 * register files, and per-k-tile compute (fragment loads + MMA grid).
 * The optimized GEMM (Fig. 9/10) and every fused kernel (MLP, LSTM,
 * FMHA) are assembled from this block plus their own staging and
 * epilogues.
 *
 * On Ampere the A operand is read with ldmatrix and B with
 * ldmatrix.trans feeding mma.m16n8k16; on Volta fragments are 8-deep
 * vector loads feeding quad-pair mma.m8n8k4 (B must be stored
 * transposed, [n, k]).
 */

#ifndef GRAPHENE_OPS_BLOCK_GEMM_H
#define GRAPHENE_OPS_BLOCK_GEMM_H

#include <functional>

#include "ops/common.h"

namespace graphene
{
namespace ops
{

/** A shared-memory matrix operand: buffer, row stride, swizzle. */
struct SmemOperand
{
    std::string buffer;
    int64_t rowStride = 0;
    Swizzle swizzle;
};

class BlockGemm
{
  public:
    /**
     * @param mTile,nTile  the block-level output tile
     * @param wm,wn        warp tile (Volta requires wm % 32 == 0)
     */
    BlockGemm(const GpuArch &arch, int64_t mTile, int64_t nTile,
              int64_t wm, int64_t wn);

    int64_t warps() const { return warpsM_ * warpsN_; }
    int64_t blockSize() const { return warps() * 32; }
    int64_t kStep() const { return ampere_ ? 16 : 8; }
    bool isAmpere() const { return ampere_; }

    /** Accumulator registers per thread. */
    int64_t accCount() const;

    /** Names used for the register buffers (override before emit). */
    std::string accName = "%acc";
    std::string afragName = "%afrag";
    std::string bfragName = "%bfrag";

    /** Alloc statements for fragments and accumulators. */
    std::vector<StmtPtr> allocFragments() const;

    /** Zero the accumulators. */
    StmtPtr initAcc() const;

    /**
     * Compute acc += A_tile * B_tile for a kDepth-deep slice whose
     * top-left element is at (row aRow0, col aCol0) of operand @p a
     * (an [*, k]-major shared tensor) and, for B, at (row bRow0, col
     * bCol0) of @p b — [k, n]-major on Ampere, [n, k]-major (i.e.
     * transposed) on Volta.
     *
     * kDepth must be a multiple of kStep().
     */
    std::vector<StmtPtr> tileCompute(const SmemOperand &a, ExprPtr aRow0,
                                     ExprPtr aCol0, const SmemOperand &b,
                                     ExprPtr bRow0, ExprPtr bCol0,
                                     int64_t kDepth,
                                     bool disableLdmatrix = false) const;

    /**
     * Enumerate the accumulator vectors of the executing thread:
     * fn(mLocal, nLocalBase, accOffset, width) where (mLocal,
     * nLocalBase..+width) are coordinates within the block tile and
     * acc[accOffset..+width] holds those fp32 values contiguously
     * (width = 2 on Ampere, 8 on Volta).
     */
    void forEachAccVector(
        const std::function<void(ExprPtr, ExprPtr, int64_t, int64_t)>
            &fn) const;

    /** Per-thread n-contiguous accumulator width (2 or 8). */
    int64_t accVectorWidth() const { return ampere_ ? 2 : 8; }

    /** Expressions for the warp coordinates of the executing thread. */
    ExprPtr warpM() const;
    ExprPtr warpN() const;
    ExprPtr laneId() const;

  private:
    const GpuArch &arch_;
    bool ampere_;
    int64_t mTile_, nTile_, wm_, wn_;
    int64_t warpsM_, warpsN_;
    int64_t fragsM_, fragsN_, stripsPerQp_;
};

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_BLOCK_GEMM_H
