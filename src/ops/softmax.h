/**
 * @file
 * Row-wise softmax kernel: the "straightforward custom CUDA kernel"
 * of the paper's unfused FMHA baseline (Fig. 14).
 */

#ifndef GRAPHENE_OPS_SOFTMAX_H
#define GRAPHENE_OPS_SOFTMAX_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

/**
 * Numerically stable softmax over each row of an [rows, cols] fp16
 * tensor; one block per row, optional pre-scale of the logits
 * (attention's 1/sqrt(d)).
 */
Kernel buildRowSoftmax(const GpuArch &arch, int64_t rows, int64_t cols,
                       double preScale, const std::string &inName,
                       const std::string &outName);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_SOFTMAX_H
