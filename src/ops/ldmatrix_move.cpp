#include "ops/ldmatrix_move.h"

#include "support/diag.h"

namespace graphene
{
namespace ops
{

Kernel
buildLdmatrixMoveKernel()
{
    diag::Scope rootScope("ldmatrix-move");
    const int64_t blockSize = 32;
    Kernel k("ldmatrix_move", 1, blockSize);
    auto in = TensorView::global("%in", Layout::rowMajor(IntTuple{32, 8}),
                                 ScalarType::Fp16);
    auto out = TensorView::global("%out",
                                  Layout::rowMajor(IntTuple{32, 8}),
                                  ScalarType::Fp16);
    k.addParam(in, true);
    k.addParam(out, false);

    auto t = tid(blockSize);
    auto one = perThread(blockSize);
    auto warp = perWarp(blockSize);

    // %1: the 16x16 shared-memory tile (paper line 2).
    auto smem = TensorView::shared("%1",
                                   Layout::rowMajor(IntTuple{16, 16}),
                                   ScalarType::Fp16);
    // %2: the per-thread destination registers (paper line 3): 2
    // adjacent values per received 8x8 tile, 4 tiles.
    auto regs = TensorView::registers("%2",
                                      Layout::colMajor(IntTuple{2, 4}),
                                      ScalarType::Fp16);

    // Staging: each thread copies one 8-half chunk in, and its result
    // row out (not part of Fig. 1, just harness plumbing).
    auto srcChunk = in.tile({Layout::vector(1), std::nullopt})
                        .index({t, constant(0)});
    auto smemChunk = smem.named("%1v")
                         .withLayout(Layout::rowMajor(IntTuple{32, 8}))
                         .tile({Layout::vector(1), std::nullopt})
                         .index({t, constant(0)});
    auto stage = TensorView::registers("%stage", Layout::vector(8),
                                       ScalarType::Fp16);

    // Fig. 1d lines 7-9: tile the warp into 2x2 groups of 8 threads.
    auto warpT = ThreadGroup::threads("#4", Layout::vector(32), blockSize);
    auto groups = warpT.tile({Layout::vector(8)}).reshape(IntTuple{2, 2});
    auto g = groups.indices(0);       // (thr_grp_m, thr_grp_n)
    auto local = groups.indices(1)[0]; // grp_local_idx

    // Fig. 1d lines 12-15: tile the source into 8x8 tiles, one per
    // group, then into rows, one per thread.
    auto tiles = smem.tile({Layout::vector(8), Layout::vector(8)})
                     .named("%6");
    auto perGroup = tiles.index({g[0], g[1]}).named("%7");
    auto row = perGroup.tile({Layout::vector(1), std::nullopt})
                   .index({local, constant(0)})
                   .named("%8");

    // Fig. 1d line 18-19: the atomic Move matching ldmatrix.
    auto ldm = Spec::move(warp, row, regs);

    // Write out each thread's received values.
    auto dstRow = out.tile({Layout::vector(1), std::nullopt})
                      .index({t, constant(0)});
    auto regsFlat = regs.named("%2v").withLayout(Layout::vector(8));

    k.setBody({
        alloc("%1", ScalarType::Fp16, MemorySpace::SH, 256),
        alloc("%stage", ScalarType::Fp16, MemorySpace::RF, 8),
        alloc("%2", ScalarType::Fp16, MemorySpace::RF, 8),
        comment("stage the tile into shared memory"),
        call(Spec::move(one, srcChunk, stage)),
        call(Spec::move(one, stage, smemChunk)),
        syncThreads(),
        comment("Fig. 1d: warp-level Move via ldmatrix"),
        call(ldm),
        comment("write back each thread's fragment"),
        call(Spec::move(one, regsFlat, dstRow)),
    });
    return k;
}

} // namespace ops
} // namespace graphene
