#include "ops/tc_gemm.h"

#include "ops/block_gemm.h"
#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

std::string
epilogueName(Epilogue e)
{
    switch (e) {
      case Epilogue::None: return "none";
      case Epilogue::Bias: return "bias";
      case Epilogue::Relu: return "relu";
      case Epilogue::BiasRelu: return "bias+relu";
      case Epilogue::BiasGelu: return "bias+gelu";
    }
    return "?";
}

bool
tcGemmConfigValid(const GpuArch &arch, const TcGemmConfig &cfg)
{
    const int64_t kStep = arch.hasLdmatrix ? 16 : 8;
    if (cfg.bm <= 0 || cfg.bn <= 0 || cfg.bk <= 0 || cfg.wm <= 0
        || cfg.wn <= 0)
        return false;
    // N and K must divide the block tile (M tolerates partial tiles).
    if (cfg.n % cfg.bn != 0 || cfg.k % cfg.bk != 0)
        return false;
    if (cfg.bm % cfg.wm != 0 || cfg.bn % cfg.wn != 0)
        return false;
    // Warp-tile granularity (BlockGemm): mma.m16n8k16 fragments on
    // Ampere, quad-pair m8n8k4 on Volta.
    if (arch.hasLdmatrix) {
        if (cfg.wm % 16 != 0 || cfg.wn % 16 != 0)
            return false;
    } else {
        if (cfg.wm % 32 != 0 || cfg.wn % 8 != 0)
            return false;
        if (cfg.disableLdmatrix)
            return false; // the ablation knob is Ampere-only
    }
    if (cfg.bk % kStep != 0)
        return false;
    // Launch limits: staged A and B tiles in shared memory, CUDA's
    // 1024-thread block ceiling, and the SM occupancy bounds.
    const int64_t smemBytes = (cfg.bm * cfg.bk + cfg.bk * cfg.bn) * 2;
    if (smemBytes > arch.maxSharedMemPerBlockBytes)
        return false;
    const int64_t blockSize =
        (cfg.bm / cfg.wm) * (cfg.bn / cfg.wn) * 32;
    if (blockSize > 1024 || blockSize > arch.maxThreadsPerSm)
        return false;
    // The staging copy distributes each tile as 8-element chunks over
    // the whole block (see stageTileToShared), so both the A (bm x bk)
    // and B (bk x bn) tiles must split evenly.
    if ((cfg.bm * cfg.bk / 8) % blockSize != 0
        || (cfg.bk * cfg.bn / 8) % blockSize != 0)
        return false;
    return true;
}

std::vector<TcGemmConfig>
tcGemmTuneSpace(const GpuArch &arch, const TcGemmConfig &seed)
{
    auto sameKnobs = [](const TcGemmConfig &a, const TcGemmConfig &b) {
        return a.bm == b.bm && a.bn == b.bn && a.bk == b.bk
            && a.wm == b.wm && a.wn == b.wn && a.swizzle == b.swizzle
            && a.disableLdmatrix == b.disableLdmatrix;
    };
    std::vector<TcGemmConfig> out;
    out.push_back(seed); // the seed survives even if it is invalid
    const bool ldmatrixKnob = arch.hasLdmatrix;
    for (int64_t bm : {64, 128, 256})
        for (int64_t bn : {64, 128, 256})
            for (int64_t bk : {16, 32, 64})
                for (int64_t wm : {32, 64})
                    for (int64_t wn : {32, 64})
                        for (int sw = 1; sw >= 0; --sw)
                            for (int noLdm = 0;
                                 noLdm <= (ldmatrixKnob ? 1 : 0);
                                 ++noLdm) {
                                TcGemmConfig c = seed;
                                c.bm = bm;
                                c.bn = bn;
                                c.bk = bk;
                                c.wm = wm;
                                c.wn = wn;
                                c.swizzle = sw != 0;
                                c.disableLdmatrix = noLdm != 0;
                                if (!tcGemmConfigValid(arch, c))
                                    continue;
                                if (sameKnobs(c, seed))
                                    continue;
                                out.push_back(c);
                            }
    return out;
}

Kernel
buildTcGemm(const GpuArch &arch, const TcGemmConfig &cfg)
{
    diag::Scope rootScope("tc-gemm");
    const bool ampere = arch.hasLdmatrix;
    const int64_t bm = cfg.bm, bn = cfg.bn, bk = cfg.bk;
    // M may be a non-multiple of the tile (partial tiles, paper
    // Section 3.4): the last row-tile is over-approximated, its loads
    // zero-filled and its stores predicated.  N and K stay exact.
    GRAPHENE_CHECK(cfg.n % bn == 0 && cfg.k % bk == 0)
        << "GEMM " << cfg.m << "x" << cfg.n << "x" << cfg.k
        << ": N and K must divide the block tile " << bn << "x" << bk;
    const bool partialM = cfg.m % bm != 0;

    BlockGemm bg(arch, bm, bn, cfg.wm, cfg.wn);
    GRAPHENE_CHECK(bk % bg.kStep() == 0) << "bk granularity";
    const int64_t blockSize = bg.blockSize();
    const int64_t gridM = ceilDiv(cfg.m, bm);
    const int64_t gridN = cfg.n / bn;
    const int64_t gridSize = cfg.batch * gridM * gridN;

    Kernel kernel("graphene_tc_gemm_" + epilogueName(cfg.epilogue),
                  gridSize, blockSize);
    const int64_t lastBatch = cfg.batch - 1;
    auto A = TensorView::global(
        cfg.aName,
        Layout::vector(cfg.batchStrideA * lastBatch + cfg.m * cfg.k),
        ScalarType::Fp16);
    auto B = TensorView::global(
        cfg.bName,
        Layout::vector(cfg.batchStrideB * lastBatch + cfg.k * cfg.n),
        ScalarType::Fp16);
    auto C = TensorView::global(
        cfg.cName,
        Layout::vector(cfg.batchStrideC * lastBatch + cfg.m * cfg.n),
        ScalarType::Fp16);
    kernel.addParam(A, true);
    kernel.addParam(B, true);
    kernel.addParam(C, false);
    const bool hasBias = cfg.epilogue == Epilogue::Bias
        || cfg.epilogue == Epilogue::BiasRelu
        || cfg.epilogue == Epilogue::BiasGelu;
    const bool hasAct = cfg.epilogue == Epilogue::Relu
        || cfg.epilogue == Epilogue::BiasRelu
        || cfg.epilogue == Epilogue::BiasGelu;
    const OpKind act = cfg.epilogue == Epilogue::BiasGelu ? OpKind::Gelu
                                                          : OpKind::Relu;
    if (hasBias)
        kernel.addParam(TensorView::global(
                            cfg.biasName, Layout::vector(cfg.n),
                            ScalarType::Fp16), true);

    auto b = bid(gridSize);
    auto bidBatch = floorDiv(b, constant(gridM * gridN));
    auto bRem = mod(b, constant(gridM * gridN));
    auto bidM = mod(bRem, constant(gridM));
    auto bidN = floorDiv(bRem, constant(gridM));
    auto one = perThread(blockSize);
    auto ktVar = variable("kt", cfg.k / bk);

    const Swizzle sw = cfg.swizzle ? Swizzle(3, 3, 3) : Swizzle();
    const Swizzle swB = cfg.swizzle ? sw.then(3, 3, 6) : Swizzle();
    SmemOperand aOp{"%As", bk, sw};
    SmemOperand bOp{"%Bs", ampere ? bn : bk, swB};
    auto As = TensorView::shared("%As", Layout::rowMajor(IntTuple{bm, bk}),
                                 ScalarType::Fp16, sw);
    auto Bs = ampere
        ? TensorView::shared("%Bs", Layout::rowMajor(IntTuple{bk, bn}),
                             ScalarType::Fp16, swB)
        : TensorView::shared("%Bs", Layout::rowMajor(IntTuple{bn, bk}),
                             ScalarType::Fp16, swB);

    std::vector<StmtPtr> body;
    ExprPtr validRows; // rows of this block's tile inside the tensor
    {
        diag::Scope prologueScope("prologue");
        body.push_back(alloc("%As", ScalarType::Fp16, MemorySpace::SH,
                             bm * bk, sw));
        body.push_back(alloc("%Bs", ScalarType::Fp16, MemorySpace::SH,
                             bk * bn, swB));
        body.push_back(alloc("%stg", ScalarType::Fp16, MemorySpace::RF,
                             8));
        if (partialM) {
            body.push_back(alloc("%zfill", ScalarType::Fp16,
                                 MemorySpace::RF, 8));
            TensorView zero("%z", "%zfill", Layout::vector(8),
                            ScalarType::Fp16, MemorySpace::RF);
            body.push_back(call(Spec::init(0.0, one, zero)));
            validRows = sub(constant(cfg.m), mul(bidM, constant(bm)));
        }
        auto fragAllocs = bg.allocFragments();
        body.insert(body.end(), fragAllocs.begin(), fragAllocs.end());
        body.push_back(bg.initAcc());
    }

    // ----------------------------------------------------- main loop -
    std::vector<StmtPtr> loop;
    {
        diag::Scope loopScope("main-loop");
        ExprPtr aBase = add(
            mul(bidBatch, constant(cfg.batchStrideA)),
            add(mul(bidM, constant(bm * cfg.k)),
                mul(ktVar, constant(bk))));
        auto stageA = stageTileToShared(arch, blockSize, cfg.aName, aBase,
                                        cfg.k, bm, bk, As, "%stg",
                                        validRows, "%zfill");
        loop.insert(loop.end(), stageA.begin(), stageA.end());
        // B tile base and staging orientation: Bs must be [k, n] on
        // Ampere and [n, k] on Volta; the source is [k, n] normally or
        // [n, k] when bTransposed.
        std::vector<StmtPtr> stageB;
        ExprPtr batchB = mul(bidBatch, constant(cfg.batchStrideB));
        if (!cfg.bTransposed) {
            ExprPtr bBase = add(batchB,
                                add(mul(ktVar, constant(bk * cfg.n)),
                                    mul(bidN, constant(bn))));
            stageB = ampere
                ? stageTileToShared(arch, blockSize, cfg.bName, bBase,
                                    cfg.n, bk, bn, Bs, "%stg")
                : stageTileToSharedTransposed(blockSize, cfg.bName,
                                              bBase, cfg.n, bk, bn, Bs,
                                              "%stg");
        } else {
            ExprPtr bBase = add(batchB,
                                add(mul(bidN, constant(bn * cfg.k)),
                                    mul(ktVar, constant(bk))));
            stageB = ampere
                ? stageTileToSharedTransposed(blockSize, cfg.bName,
                                              bBase, cfg.k, bn, bk, Bs,
                                              "%stg")
                : stageTileToShared(arch, blockSize, cfg.bName, bBase,
                                    cfg.k, bn, bk, Bs, "%stg");
        }
        loop.insert(loop.end(), stageB.begin(), stageB.end());
        loop.push_back(syncThreads());
        auto compute = bg.tileCompute(aOp, constant(0), constant(0), bOp,
                                      constant(0), constant(0), bk,
                                      cfg.disableLdmatrix);
        loop.insert(loop.end(), compute.begin(), compute.end());
        loop.push_back(syncThreads());
        body.push_back(forStmtUniform("kt", 0, cfg.k / bk, 1,
                                      std::move(loop)));
    }

    // ------------------------------------------------------ epilogue -
    diag::Scope epilogueScope("epilogue");
    std::vector<StmtPtr> epi;
    auto biasView = TensorView::global(cfg.biasName,
                                       Layout::vector(cfg.n),
                                       ScalarType::Fp16);
    epi.push_back(alloc("%cvt", ScalarType::Fp16, MemorySpace::RF,
                        bg.accVectorWidth()));
    if (hasBias) {
        epi.push_back(alloc("%bh", ScalarType::Fp16, MemorySpace::RF, 1));
        epi.push_back(alloc("%bhf", ScalarType::Fp32, MemorySpace::RF,
                            1));
    }
    if (cfg.loadC) {
        epi.push_back(alloc("%cin", ScalarType::Fp16, MemorySpace::RF,
                            1));
        epi.push_back(alloc("%cinf", ScalarType::Fp32, MemorySpace::RF,
                            1));
    }
    auto regE = [&](const std::string &buf, int64_t count,
                    ScalarType scalar, int64_t off) {
        TensorView v("%v", buf, count == 1 ? Layout()
                                           : Layout::vector(count),
                     scalar, MemorySpace::RF);
        return off ? v.offsetBy(constant(off)) : v;
    };

    bg.forEachAccVector([&](ExprPtr mLocal, ExprPtr nLocal,
                            int64_t accOff, int64_t width) {
        ExprPtr mExpr = add(mul(bidM, constant(bm)), mLocal);
        ExprPtr nBase = add(mul(bidN, constant(bn)), nLocal);
        ExprPtr cBatch = mul(bidBatch, constant(cfg.batchStrideC));
        // With a partial M tile, collect this accumulator vector's
        // statements separately and wrap them in the row predicate
        // (shadowing `epi` keeps the emission code identical).
        std::vector<StmtPtr> guarded;
        std::vector<StmtPtr> &outerEpi = epi;
        std::vector<StmtPtr> &epi = partialM ? guarded : outerEpi;
        for (int64_t e = 0; e < width; ++e) {
            ExprPtr nExpr = add(nBase, constant(e));
            auto accE = regE("%acc", 1, ScalarType::Fp32, accOff + e);
            if (cfg.alpha != 1.0)
                epi.push_back(call(Spec::binaryScalar(
                    OpKind::Mul, one, accE, cfg.alpha, accE)));
            if (cfg.loadC) {
                epi.push_back(call(Spec::move(
                    one,
                    C.index({add(cBatch,
                                 add(mul(mExpr, constant(cfg.n)),
                                     nExpr))}),
                    regE("%cin", 1, ScalarType::Fp16, 0))));
                epi.push_back(call(Spec::move(
                    one, regE("%cin", 1, ScalarType::Fp16, 0),
                    regE("%cinf", 1, ScalarType::Fp32, 0))));
                epi.push_back(call(Spec::binary(
                    OpKind::Add, one, accE,
                    regE("%cinf", 1, ScalarType::Fp32, 0), accE)));
            }
            if (hasBias) {
                epi.push_back(call(Spec::move(
                    one, biasView.index({nExpr}),
                    regE("%bh", 1, ScalarType::Fp16, 0))));
                epi.push_back(call(Spec::move(
                    one, regE("%bh", 1, ScalarType::Fp16, 0),
                    regE("%bhf", 1, ScalarType::Fp32, 0))));
                epi.push_back(call(Spec::binary(
                    OpKind::Add, one, accE,
                    regE("%bhf", 1, ScalarType::Fp32, 0), accE)));
            }
            if (hasAct)
                epi.push_back(call(Spec::unary(act, one, accE, accE)));
        }
        // Convert to fp16 and store the contiguous vector.
        epi.push_back(call(Spec::move(
            one, regE("%acc", width, ScalarType::Fp32, accOff),
            regE("%cvt", width, ScalarType::Fp16, 0))));
        TensorView dst("%cd", cfg.cName, Layout::vector(width),
                       ScalarType::Fp16, MemorySpace::GL);
        dst = dst.offsetBy(add(cBatch,
                               add(mul(mExpr, constant(cfg.n)), nBase)));
        epi.push_back(call(Spec::move(
            one, regE("%cvt", width, ScalarType::Fp16, 0), dst)));
        if (partialM)
            outerEpi.push_back(ifStmt(lessThan(mExpr, constant(cfg.m)),
                                      std::move(guarded)));
    });
    body.insert(body.end(), epi.begin(), epi.end());

    kernel.setBody(std::move(body));
    // Compulsory DRAM traffic: A and B panels stream through L2 (they
    // fit at the paper's tile sizes), C is written once.
    double dram = 2.0 * (cfg.m * cfg.k + cfg.k * cfg.n + cfg.m * cfg.n);
    if (hasBias)
        dram += 2.0 * cfg.n;
    if (cfg.loadC)
        dram += 2.0 * cfg.m * cfg.n;
    kernel.setDramBytesHint(dram * cfg.batch);
    return kernel;
}

} // namespace ops
} // namespace graphene
