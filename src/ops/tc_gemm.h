/**
 * @file
 * The optimized tensor-core GEMM generator: the hierarchical
 * decomposition the paper evaluates in Fig. 9/10 (and the building
 * block of the fused kernels).
 *
 * The kernel computes C[m,n] = epilogue(A[m,k] * B[k,n] (+ C) (+ bias))
 * with fp16 inputs and fp32 tensor-core accumulation:
 *   - block tiles staged through shared memory (cp.async on Ampere,
 *     register round-trip on Volta), optionally with XOR-swizzled
 *     layouts to avoid bank conflicts;
 *   - Ampere: warp tiles fed by ldmatrix / ldmatrix.trans and
 *     mma.m16n8k16;
 *   - Volta: quad-pair mma.m8n8k4 with per-thread fragment loads.
 */

#ifndef GRAPHENE_OPS_TC_GEMM_H
#define GRAPHENE_OPS_TC_GEMM_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

/** Pointwise epilogues fused into the GEMM (paper Fig. 10). */
enum class Epilogue
{
    None,
    Bias,
    Relu,
    BiasRelu,
    BiasGelu,
};

std::string epilogueName(Epilogue e);

struct TcGemmConfig
{
    int64_t m = 128;
    int64_t n = 128;
    int64_t k = 64;
    int64_t bm = 128; // block tile
    int64_t bn = 128;
    int64_t bk = 32;
    /** Warp tile; Volta uses 32x32 regardless. */
    int64_t wm = 64;
    int64_t wn = 64;
    /** Swizzle shared-memory tiles (ablation: Fig. "swizzle"). */
    bool swizzle = true;
    /** Replace ldmatrix with per-thread fragment loads (ablation,
     *  paper Section 2's ~17% claim; Ampere only). */
    bool disableLdmatrix = false;
    Epilogue epilogue = Epilogue::None;
    /** Accumulate into the existing C (cuBLASLt beta=1 mode). */
    bool loadC = false;

    /** Batched GEMM: one (m,n,k) problem per batch entry. */
    int64_t batch = 1;
    int64_t batchStrideA = 0;
    int64_t batchStrideB = 0;
    int64_t batchStrideC = 0;

    /** B is stored [n, k] row-major (e.g. K in Q*K^T). */
    bool bTransposed = false;

    /** Scale the result by a constant before the epilogue. */
    double alpha = 1.0;

    /** Buffer names (defaults "%A", "%B", "%C", "%bias"). */
    std::string aName = "%A";
    std::string bName = "%B";
    std::string cName = "%C";
    std::string biasName = "%bias";
};

/** Build the kernel for @p arch; checks divisibility constraints. */
Kernel buildTcGemm(const GpuArch &arch, const TcGemmConfig &config);

/**
 * True if @p config satisfies every constraint buildTcGemm enforces on
 * @p arch (tile divisibility, warp-tile granularity, shared-memory and
 * block-size limits) — the candidate filter of the tuning space.
 */
bool tcGemmConfigValid(const GpuArch &arch, const TcGemmConfig &config);

/**
 * The tunable configuration space around @p seed: every combination of
 * block tile (bm/bn/bk), warp tile (wm/wn), swizzle, and ldmatrix
 * usage that tcGemmConfigValid accepts for the seed's problem shape.
 * The seed itself is always candidates[0]; all entries are unique.
 */
std::vector<TcGemmConfig> tcGemmTuneSpace(const GpuArch &arch,
                                          const TcGemmConfig &seed);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_TC_GEMM_H
