/**
 * @file
 * Fused multi-head attention (paper Fig. 14): per (batch, head,
 * query-tile) block, compute softmax(Q K^T / sqrt(d)) V in ONE kernel:
 *
 *   1. stage the 64-query Q tile once;
 *   2. per 128-key tile: S = Q K^T via tensor cores, scaled, stored to
 *      a shared-memory score tile (all 'seq' columns stay resident);
 *   3. block-cooperative numerically-stable softmax over the score
 *      rows (unnormalized probabilities stay in shared memory);
 *   4. per 128-key tile: O += P V via tensor cores;
 *   5. scale O rows by 1/rowsum, store.
 *
 * The intermediate [seq, seq] score tensor never touches global
 * memory — that is the fusion the unfused cuBLAS+softmax baseline
 * pays for twice per head.
 */

#ifndef GRAPHENE_OPS_FMHA_H
#define GRAPHENE_OPS_FMHA_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

struct FmhaConfig
{
    int64_t batch = 32;
    int64_t heads = 16;
    int64_t seq = 384;
    int64_t headDim = 64;
    int64_t qTile = 64;
    int64_t kTile = 128;
    /** Swizzled shared-memory layouts (the paper's edge over the
     *  handwritten MLPerf kernels). */
    bool swizzle = true;
    /**
     * Model the handwritten (MLPerf/TensorRT) kernel: the standard
     * single-stage swizzle everywhere, instead of the two-stage
     * layouts Graphene's layout algebra derives for the buffers that
     * are accessed with two different stride patterns.
     */
    bool handwrittenLayouts = false;
    // Tensors are [batch, heads, seq, headDim] row-major, flattened.
    std::string qName = "%Q";
    std::string kName = "%K";
    std::string vName = "%V";
    std::string oName = "%O";
};

Kernel buildFusedFmha(const GpuArch &arch, const FmhaConfig &cfg);

/**
 * True if @p cfg satisfies every constraint buildFusedFmha enforces
 * (tile sizes, sequence/head-dim granularity).
 */
bool fmhaConfigValid(const GpuArch &arch, const FmhaConfig &cfg);

/**
 * The tunable space around @p seed: shared-memory swizzle and the
 * single- vs two-stage staging-layout choice (the handwritten-kernel
 * ablation), filtered by fmhaConfigValid; the seed is candidates[0].
 */
std::vector<FmhaConfig> fmhaTuneSpace(const GpuArch &arch,
                                      const FmhaConfig &seed);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_FMHA_H
