/**
 * @file
 * Elementwise and reduction kernel generators over fp16 tensors.
 * These are the per-op kernels the *unfused* library baselines launch
 * (cuDNN-style pointwise ops, PyTorch-eager Layernorm decomposition).
 */

#ifndef GRAPHENE_OPS_POINTWISE_H
#define GRAPHENE_OPS_POINTWISE_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

/** out[i] = op(in[i]) over @p count fp16 elements. */
Kernel buildUnaryPointwise(const GpuArch &arch, OpKind op, int64_t count,
                           const std::string &inName,
                           const std::string &outName);

/** out[i] = op(a[i], b[i]). */
Kernel buildBinaryPointwise(const GpuArch &arch, OpKind op, int64_t count,
                            const std::string &aName,
                            const std::string &bName,
                            const std::string &outName);

/** out[i] = op(in[i], scalar). */
Kernel buildScalarPointwise(const GpuArch &arch, OpKind op, double scalar,
                            int64_t count, const std::string &inName,
                            const std::string &outName);

/**
 * out[r,c] = act(in[r,c] + bias[c]) over an [rows, cols] tensor
 * (OpKind::Identity skips the activation) — the cuDNN-style bias /
 * activation kernel.
 */
Kernel buildBiasAct(const GpuArch &arch, int64_t rows, int64_t cols,
                    OpKind act, const std::string &inName,
                    const std::string &biasName,
                    const std::string &outName);

/**
 * Row-wise reduction of an [rows, cols] fp16 tensor into a [rows] fp32
 * vector: out[r] = scale * reduce_c(op, in[r, c]).
 */
Kernel buildRowReduce(const GpuArch &arch, OpKind op, int64_t rows,
                      int64_t cols, double scale,
                      const std::string &inName,
                      const std::string &outName);

/** out[r,c] = op(in[r,c], rowVec[r]); rowVec is fp32 [rows]. */
Kernel buildRowBroadcast(const GpuArch &arch, OpKind op, int64_t rows,
                         int64_t cols, const std::string &inName,
                         const std::string &rowVecName,
                         const std::string &outName);

/** out[r,c] = op(in[r,c], colVec[c]); colVec is fp16 [cols]. */
Kernel buildColBroadcast(const GpuArch &arch, OpKind op, int64_t rows,
                         int64_t cols, const std::string &inName,
                         const std::string &colVecName,
                         const std::string &outName);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_POINTWISE_H
