/**
 * @file
 * The fused multi-layer perceptron kernel (paper Fig. 11).
 *
 * For layer widths N = K <= 128, all intermediate activations of an
 * M-row batch tile fit in shared memory, so L layers
 * h_{l+1} = relu(h_l * W_l + b_l) fuse into ONE kernel: activations
 * ping-pong between two shared tiles and only the input and the final
 * output touch global memory.  The unfused baseline launches L
 * cuBLASLt bias+relu GEMMs instead (see baselines/CublasLtLike).
 */

#ifndef GRAPHENE_OPS_MLP_H
#define GRAPHENE_OPS_MLP_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

struct FusedMlpConfig
{
    int64_t m = 2048;   // batch rows
    int64_t width = 128; // N = K (layer width)
    int64_t layers = 4;
    int64_t mTile = 64; // rows per block
    bool swizzle = true;
    std::string xName = "%x";       // [m, width] fp16
    std::string wName = "%W";       // [layers, width, width] fp16
    std::string biasName = "%b";    // [layers, width] fp16
    std::string outName = "%y";     // [m, width] fp16
};

Kernel buildFusedMlp(const GpuArch &arch, const FusedMlpConfig &cfg);

/**
 * True if @p cfg satisfies every constraint buildFusedMlp enforces:
 * width granularity, batch divisible by the M tile, warp-tile and
 * store-chunk divisibility of the derived block size.
 */
bool mlpConfigValid(const GpuArch &arch, const FusedMlpConfig &cfg);

/**
 * The tunable space around @p seed: M tile (rows per block) and
 * shared-memory swizzle, filtered by mlpConfigValid; the seed is
 * always candidates[0].
 */
std::vector<FusedMlpConfig> mlpTuneSpace(const GpuArch &arch,
                                         const FusedMlpConfig &seed);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_MLP_H
