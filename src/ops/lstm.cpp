#include "ops/lstm.h"

#include "ops/block_gemm.h"
#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

Kernel
buildFusedLstm(const GpuArch &arch, const FusedLstmConfig &cfg)
{
    diag::Scope rootScope("fused-lstm");
    const bool ampere = arch.hasLdmatrix;
    const int64_t bm = cfg.bm, bn = cfg.bn, bk = cfg.bk;
    GRAPHENE_CHECK(cfg.m % bm == 0 && cfg.n % bn == 0 && cfg.k % bk == 0)
        << "LSTM sizes must divide the block tile";

    BlockGemm bg(arch, bm, bn, cfg.wm, cfg.wn);
    GRAPHENE_CHECK(bk % bg.kStep() == 0) << "bk granularity";
    const int64_t blockSize = bg.blockSize();
    const int64_t gridM = cfg.m / bm;
    const int64_t gridN = cfg.n / bn;
    const int64_t gridSize = gridM * gridN;

    Kernel kernel("graphene_fused_lstm", gridSize, blockSize);
    for (const auto &[name, rows, cols] :
         {std::tuple<std::string, int64_t, int64_t>{cfg.xName, cfg.m,
                                                    cfg.k},
          {cfg.hName, cfg.m, cfg.k},
          {cfg.wxName, cfg.k, cfg.n},
          {cfg.whName, cfg.k, cfg.n}})
        kernel.addParam(TensorView::global(
                            name, Layout::rowMajor(IntTuple{rows, cols}),
                            ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(cfg.biasName,
                                       Layout::vector(cfg.n),
                                       ScalarType::Fp16), true);
    kernel.addParam(TensorView::global(
                        cfg.outName,
                        Layout::rowMajor(IntTuple{cfg.m, cfg.n}),
                        ScalarType::Fp16), false);

    auto b = bid(gridSize);
    auto bidM = mod(b, constant(gridM));
    auto bidN = floorDiv(b, constant(gridM));
    auto one = perThread(blockSize);

    const Swizzle sw = cfg.swizzle ? Swizzle(3, 3, 3) : Swizzle();
    const Swizzle swB = cfg.swizzle ? sw.then(3, 3, 6) : Swizzle();
    SmemOperand aOp{"%As", bk, sw};
    SmemOperand bOp{"%Bs", ampere ? bn : bk, swB};
    auto As = TensorView::shared("%As", Layout::rowMajor(IntTuple{bm, bk}),
                                 ScalarType::Fp16, sw);
    auto Bs = ampere
        ? TensorView::shared("%Bs", Layout::rowMajor(IntTuple{bk, bn}),
                             ScalarType::Fp16, swB)
        : TensorView::shared("%Bs", Layout::rowMajor(IntTuple{bn, bk}),
                             ScalarType::Fp16, swB);

    std::vector<StmtPtr> body;
    body.push_back(alloc("%As", ScalarType::Fp16, MemorySpace::SH,
                         bm * bk, sw));
    body.push_back(alloc("%Bs", ScalarType::Fp16, MemorySpace::SH,
                         bk * bn, swB));
    body.push_back(alloc("%stg", ScalarType::Fp16, MemorySpace::RF, 8));
    auto fragAllocs = bg.allocFragments();
    body.insert(body.end(), fragAllocs.begin(), fragAllocs.end());
    body.push_back(bg.initAcc());

    // One GEMM main loop accumulating act * W into the accumulators.
    auto emitGemmLoop = [&](const std::string &actName,
                            const std::string &wName,
                            const std::string &loopVar) {
        diag::Scope gemmScope("gemm-loop(" + actName + ")");
        auto ktVar = variable(loopVar, cfg.k / bk);
        std::vector<StmtPtr> loop;
        ExprPtr aBase = add(mul(bidM, constant(bm * cfg.k)),
                            mul(ktVar, constant(bk)));
        auto stageA = stageTileToShared(arch, blockSize, actName, aBase,
                                        cfg.k, bm, bk, As, "%stg");
        loop.insert(loop.end(), stageA.begin(), stageA.end());
        ExprPtr bBase = add(mul(ktVar, constant(bk * cfg.n)),
                            mul(bidN, constant(bn)));
        if (ampere) {
            auto stageB = stageTileToShared(arch, blockSize, wName,
                                            bBase, cfg.n, bk, bn, Bs,
                                            "%stg");
            loop.insert(loop.end(), stageB.begin(), stageB.end());
        } else {
            auto stageB = stageTileToSharedTransposed(
                blockSize, wName, bBase, cfg.n, bk, bn, Bs, "%stg");
            loop.insert(loop.end(), stageB.begin(), stageB.end());
        }
        loop.push_back(syncThreads());
        auto compute = bg.tileCompute(aOp, constant(0), constant(0), bOp,
                                      constant(0), constant(0), bk);
        loop.insert(loop.end(), compute.begin(), compute.end());
        loop.push_back(syncThreads());
        body.push_back(forStmtUniform(loopVar, 0, cfg.k / bk, 1,
                                      std::move(loop)));
    };
    emitGemmLoop(cfg.xName, cfg.wxName, "kx");
    emitGemmLoop(cfg.hName, cfg.whName, "kh");

    // Epilogue: + bias, relu, store.
    diag::Scope epilogueScope("epilogue");
    body.push_back(alloc("%cvt", ScalarType::Fp16, MemorySpace::RF,
                         bg.accVectorWidth()));
    body.push_back(alloc("%bh", ScalarType::Fp16, MemorySpace::RF, 1));
    body.push_back(alloc("%bhf", ScalarType::Fp32, MemorySpace::RF, 1));
    TensorView biasG("%bg", cfg.biasName, Layout(), ScalarType::Fp16,
                     MemorySpace::GL);
    bg.forEachAccVector([&](ExprPtr mLocal, ExprPtr nLocal,
                            int64_t accOff, int64_t width) {
        ExprPtr mExpr = add(mul(bidM, constant(bm)), mLocal);
        ExprPtr nBase = add(mul(bidN, constant(bn)), nLocal);
        for (int64_t e = 0; e < width; ++e) {
            ExprPtr nExpr = add(nBase, constant(e));
            auto accE = scalarReg("%acc", accOff + e);
            body.push_back(call(Spec::move(
                one, biasG.offsetBy(nExpr),
                scalarReg("%bh", 0, ScalarType::Fp16))));
            body.push_back(call(Spec::move(
                one, scalarReg("%bh", 0, ScalarType::Fp16),
                scalarReg("%bhf"))));
            body.push_back(call(Spec::binary(OpKind::Add, one, accE,
                                             scalarReg("%bhf"), accE)));
            body.push_back(call(Spec::unary(OpKind::Relu, one, accE,
                                            accE)));
        }
        body.push_back(call(Spec::move(
            one, vecReg("%acc", width, ScalarType::Fp32, accOff),
            vecReg("%cvt", width, ScalarType::Fp16))));
        TensorView dst("%cd", cfg.outName, Layout::vector(width),
                       ScalarType::Fp16, MemorySpace::GL);
        dst = dst.offsetBy(add(mul(mExpr, constant(cfg.n)), nBase));
        body.push_back(call(Spec::move(
            one, vecReg("%cvt", width, ScalarType::Fp16), dst)));
    });

    kernel.setBody(std::move(body));
    kernel.setDramBytesHint(
        2.0 * (2 * cfg.m * cfg.k + 2 * cfg.k * cfg.n + cfg.n
               + cfg.m * cfg.n));
    return kernel;
}

} // namespace ops
} // namespace graphene
