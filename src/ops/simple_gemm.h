/**
 * @file
 * The paper's Fig. 8: the simplest possible but complete decomposition
 * of a matrix-multiplication kernel — block tiles, thread tiles, and a
 * triple loop of scalar hfma MatMuls operating directly on global
 * memory views.
 */

#ifndef GRAPHENE_OPS_SIMPLE_GEMM_H
#define GRAPHENE_OPS_SIMPLE_GEMM_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

struct SimpleGemmConfig
{
    int64_t m = 1024;
    int64_t n = 1024;
    int64_t k = 1024;
    int64_t blockTileM = 128; // per-block C tile
    int64_t blockTileN = 128;
    int64_t threadsM = 16;    // thread arrangement within a block
    int64_t threadsN = 16;
};

/**
 * Build the Fig. 8 kernel: C[m,n] (+)= A[m,k] * B[k,n], all fp16
 * row-major global tensors named "%A", "%B", "%C".
 */
Kernel buildSimpleGemm(const SimpleGemmConfig &config);

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_SIMPLE_GEMM_H
