/**
 * @file
 * The paper's Fig. 1: a warp-level Move of a 16x16 fp16 shared-memory
 * tile into 2x4 registers per thread, decomposed onto the ldmatrix
 * data-to-thread mapping (logical thread groups 2x2x8, one 8x8 tile
 * per group, one row per thread).
 */

#ifndef GRAPHENE_OPS_LDMATRIX_MOVE_H
#define GRAPHENE_OPS_LDMATRIX_MOVE_H

#include "ops/common.h"

namespace graphene
{
namespace ops
{

/**
 * Build a single-warp kernel that stages "%in" (16x16 fp16, row-major
 * global) into shared memory, performs the Fig. 1d warp-level Move via
 * ldmatrix, and writes each thread's eight received values to row tid
 * of "%out" (32x8 fp16 global).
 */
Kernel buildLdmatrixMoveKernel();

} // namespace ops
} // namespace graphene

#endif // GRAPHENE_OPS_LDMATRIX_MOVE_H
