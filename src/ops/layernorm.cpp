#include "ops/layernorm.h"

#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

namespace
{

constexpr int64_t kBlockSize = 128;

struct RowStatsEmitter
{
    const LayernormConfig &cfg;
    int64_t perThread;
    ThreadGroup one = ops::perThread(kBlockSize);
    ExprPtr t = tid(kBlockSize);
    ExprPtr row;

    explicit RowStatsEmitter(const LayernormConfig &config)
        : cfg(config), perThread(config.cols / kBlockSize),
          row(bid(config.rows))
    {}

    void
    allocs(std::vector<StmtPtr> &body) const
    {
        diag::Scope scope("allocs");
        body.push_back(alloc("%xh", ScalarType::Fp16, MemorySpace::RF,
                             perThread));
        body.push_back(alloc("%xf", ScalarType::Fp32, MemorySpace::RF,
                             perThread));
        body.push_back(alloc("%sq", ScalarType::Fp32, MemorySpace::RF,
                             perThread));
        for (const char *r : {"%partial", "%sum", "%sumsq", "%tmp",
                              "%chunkred", "%mean", "%inv"})
            body.push_back(alloc(r, ScalarType::Fp32, MemorySpace::RF,
                                 1));
        body.push_back(alloc("%slots", ScalarType::Fp32, MemorySpace::SH,
                             kBlockSize / 32));
    }

    /** Load the row slice into %xh/%xf. */
    void
    load(std::vector<StmtPtr> &body) const
    {
        diag::Scope scope("load-row");
        ExprPtr base = add(mul(row, constant(cfg.cols)),
                           mul(t, constant(perThread)));
        if (cfg.vectorized) {
            GRAPHENE_CHECK(perThread % 8 == 0)
                << "vectorized layernorm needs 8-wide thread slices";
            for (int64_t c = 0; c < perThread / 8; ++c) {
                TensorView src("%g", cfg.inName, Layout::vector(8),
                               ScalarType::Fp16, MemorySpace::GL);
                src = src.offsetBy(add(base, constant(c * 8)));
                body.push_back(call(Spec::move(
                    one, src, vecReg("%xh", 8, ScalarType::Fp16,
                                     c * 8))));
            }
        } else {
            for (int64_t e = 0; e < perThread; ++e) {
                TensorView src("%g", cfg.inName, Layout(),
                               ScalarType::Fp16, MemorySpace::GL);
                src = src.offsetBy(add(base, constant(e)));
                body.push_back(call(Spec::move(
                    one, src, scalarReg("%xh", e, ScalarType::Fp16))));
            }
        }
        body.push_back(call(Spec::move(
            one, vecReg("%xh", perThread, ScalarType::Fp16),
            vecReg("%xf", perThread, ScalarType::Fp32))));
    }

    /** Reduce %xf into %mean and %inv (the single-pass statistics). */
    void
    stats(std::vector<StmtPtr> &body) const
    {
        diag::Scope scope("row-stats");
        // Sum.
        body.push_back(call(Spec::reduction(
            OpKind::Add, one, vecReg("%xf", perThread, ScalarType::Fp32),
            scalarReg("%partial"))));
        auto r1 = emitBlockAllReduce(kBlockSize, OpKind::Add, "%partial",
                                     "%sum", "%tmp", "%slots");
        body.insert(body.end(), r1.begin(), r1.end());
        // Sum of squares.
        for (int64_t e = 0; e < perThread; ++e)
            body.push_back(call(Spec::binary(
                OpKind::Mul, one, scalarReg("%xf", e),
                scalarReg("%xf", e), scalarReg("%sq", e))));
        body.push_back(call(Spec::reduction(
            OpKind::Add, one, vecReg("%sq", perThread, ScalarType::Fp32),
            scalarReg("%partial"))));
        auto r2 = emitBlockAllReduce(kBlockSize, OpKind::Add, "%partial",
                                     "%sumsq", "%tmp", "%slots");
        body.insert(body.end(), r2.begin(), r2.end());
        // mean = sum/n; var = sumsq/n - mean^2; inv = rsqrt(var + eps).
        const double invN = 1.0 / static_cast<double>(cfg.cols);
        body.push_back(call(Spec::binaryScalar(
            OpKind::Mul, one, scalarReg("%sum"), invN,
            scalarReg("%mean"))));
        body.push_back(call(Spec::binaryScalar(
            OpKind::Mul, one, scalarReg("%sumsq"), invN,
            scalarReg("%sumsq"))));
        body.push_back(call(Spec::binary(
            OpKind::Mul, one, scalarReg("%mean"), scalarReg("%mean"),
            scalarReg("%tmp"))));
        body.push_back(call(Spec::binary(
            OpKind::Sub, one, scalarReg("%sumsq"), scalarReg("%tmp"),
            scalarReg("%inv"))));
        body.push_back(call(Spec::binaryScalar(
            OpKind::Add, one, scalarReg("%inv"), cfg.epsilon,
            scalarReg("%inv"))));
        body.push_back(call(Spec::unary(
            OpKind::Rsqrt, one, scalarReg("%inv"), scalarReg("%inv"))));
    }

    /** Normalize %xf with %mean/%inv, apply gamma/beta, store. */
    void
    apply(std::vector<StmtPtr> &body) const
    {
        diag::Scope scope("normalize-apply");
        body.push_back(alloc("%gh", ScalarType::Fp16, MemorySpace::RF,
                             perThread));
        body.push_back(alloc("%bh", ScalarType::Fp16, MemorySpace::RF,
                             perThread));
        body.push_back(alloc("%gf", ScalarType::Fp32, MemorySpace::RF,
                             perThread));
        body.push_back(alloc("%bf", ScalarType::Fp32, MemorySpace::RF,
                             perThread));
        ExprPtr colBase = mul(t, constant(perThread));
        for (int64_t c = 0; c < perThread / (cfg.vectorized ? 8 : 1);
             ++c) {
            const int64_t width = cfg.vectorized ? 8 : 1;
            TensorView g("%g", cfg.gammaName,
                         width == 1 ? Layout() : Layout::vector(width),
                         ScalarType::Fp16, MemorySpace::GL);
            TensorView b("%g", cfg.betaName,
                         width == 1 ? Layout() : Layout::vector(width),
                         ScalarType::Fp16, MemorySpace::GL);
            body.push_back(call(Spec::move(
                one, g.offsetBy(add(colBase, constant(c * width))),
                vecReg("%gh", width, ScalarType::Fp16, c * width))));
            body.push_back(call(Spec::move(
                one, b.offsetBy(add(colBase, constant(c * width))),
                vecReg("%bh", width, ScalarType::Fp16, c * width))));
        }
        body.push_back(call(Spec::move(
            one, vecReg("%gh", perThread, ScalarType::Fp16),
            vecReg("%gf", perThread, ScalarType::Fp32))));
        body.push_back(call(Spec::move(
            one, vecReg("%bh", perThread, ScalarType::Fp16),
            vecReg("%bf", perThread, ScalarType::Fp32))));
        for (int64_t e = 0; e < perThread; ++e) {
            body.push_back(call(Spec::binary(
                OpKind::Sub, one, scalarReg("%xf", e),
                scalarReg("%mean"), scalarReg("%xf", e))));
            body.push_back(call(Spec::binary(
                OpKind::Mul, one, scalarReg("%xf", e),
                scalarReg("%inv"), scalarReg("%xf", e))));
            body.push_back(call(Spec::binary(
                OpKind::Mul, one, scalarReg("%xf", e),
                scalarReg("%gf", e), scalarReg("%xf", e))));
            body.push_back(call(Spec::binary(
                OpKind::Add, one, scalarReg("%xf", e),
                scalarReg("%bf", e), scalarReg("%xf", e))));
        }
        body.push_back(call(Spec::move(
            one, vecReg("%xf", perThread, ScalarType::Fp32),
            vecReg("%xh", perThread, ScalarType::Fp16))));
        ExprPtr base = add(mul(row, constant(cfg.cols)), colBase);
        for (int64_t c = 0; c < perThread / (cfg.vectorized ? 8 : 1);
             ++c) {
            const int64_t width = cfg.vectorized ? 8 : 1;
            TensorView dst("%g", cfg.outName,
                           width == 1 ? Layout() : Layout::vector(width),
                           ScalarType::Fp16, MemorySpace::GL);
            dst = dst.offsetBy(add(base, constant(c * width)));
            body.push_back(call(Spec::move(
                one, vecReg("%xh", width, ScalarType::Fp16, c * width),
                dst)));
        }
    }

    void
    addParams(Kernel &kernel, bool withStats, bool withGammaBeta) const
    {
        kernel.addParam(TensorView::global(
                            cfg.inName,
                            Layout::rowMajor(IntTuple{cfg.rows,
                                                      cfg.cols}),
                            ScalarType::Fp16), true);
        if (withGammaBeta) {
            kernel.addParam(TensorView::global(
                                cfg.gammaName, Layout::vector(cfg.cols),
                                ScalarType::Fp16), true);
            kernel.addParam(TensorView::global(
                                cfg.betaName, Layout::vector(cfg.cols),
                                ScalarType::Fp16), true);
        }
        if (withStats)
            kernel.addParam(TensorView::global(
                                cfg.statsName,
                                Layout::vector(cfg.rows * 2),
                                ScalarType::Fp32), false);
    }
};

} // namespace

Kernel
buildLayernormFused(const GpuArch &arch, const LayernormConfig &cfg)
{
    (void)arch;
    diag::Scope rootScope("layernorm-fused");
    GRAPHENE_CHECK(cfg.cols % kBlockSize == 0)
        << "layernorm width must divide the block size";
    Kernel kernel(cfg.vectorized ? "layernorm_fused_vec"
                                 : "layernorm_fused_scalar",
                  cfg.rows, kBlockSize);
    RowStatsEmitter em(cfg);
    em.addParams(kernel, false, true);
    kernel.addParam(TensorView::global(
                        cfg.outName,
                        Layout::rowMajor(IntTuple{cfg.rows, cfg.cols}),
                        ScalarType::Fp16), false);

    std::vector<StmtPtr> body;
    em.allocs(body);
    em.load(body);
    em.stats(body);
    em.apply(body);
    kernel.setBody(std::move(body));
    kernel.setDramBytesHint(2.0 * (2 * cfg.rows * cfg.cols
                                   + 2 * cfg.cols));
    return kernel;
}

Kernel
buildLayernormStats(const GpuArch &arch, const LayernormConfig &cfg)
{
    (void)arch;
    diag::Scope rootScope("layernorm-stats");
    GRAPHENE_CHECK(cfg.cols % kBlockSize == 0)
        << "layernorm width must divide the block size";
    Kernel kernel("layernorm_stats", cfg.rows, kBlockSize);
    RowStatsEmitter em(cfg);
    em.addParams(kernel, true, false);

    std::vector<StmtPtr> body;
    em.allocs(body);
    em.load(body);
    em.stats(body);
    TensorView stats("%s", cfg.statsName, Layout(), ScalarType::Fp32,
                     MemorySpace::GL);
    body.push_back(ifStmt(
        lessThan(em.t, constant(1)),
        {call(Spec::move(em.one, scalarReg("%mean"),
                         stats.offsetBy(mul(em.row, constant(2))))),
         call(Spec::move(em.one, scalarReg("%inv"),
                         stats.offsetBy(add(mul(em.row, constant(2)),
                                            constant(1)))))}));
    kernel.setBody(std::move(body));
    return kernel;
}

Kernel
buildLayernormApply(const GpuArch &arch, const LayernormConfig &cfg)
{
    (void)arch;
    diag::Scope rootScope("layernorm-apply");
    Kernel kernel("layernorm_apply", cfg.rows, kBlockSize);
    RowStatsEmitter em(cfg);
    em.addParams(kernel, false, true);
    kernel.addParam(TensorView::global(
                        cfg.statsName, Layout::vector(cfg.rows * 2),
                        ScalarType::Fp32), true);
    kernel.addParam(TensorView::global(
                        cfg.outName,
                        Layout::rowMajor(IntTuple{cfg.rows, cfg.cols}),
                        ScalarType::Fp16), false);

    std::vector<StmtPtr> body;
    em.allocs(body);
    em.load(body);
    TensorView stats("%s", cfg.statsName, Layout(), ScalarType::Fp32,
                     MemorySpace::GL);
    body.push_back(call(Spec::move(
        em.one, stats.offsetBy(mul(em.row, constant(2))),
        scalarReg("%mean"))));
    body.push_back(call(Spec::move(
        em.one, stats.offsetBy(add(mul(em.row, constant(2)),
                                   constant(1))),
        scalarReg("%inv"))));
    em.apply(body);
    kernel.setBody(std::move(body));
    return kernel;
}

bool
layernormConfigValid(const GpuArch &arch, const LayernormConfig &cfg)
{
    (void)arch;
    if (cfg.rows <= 0 || cfg.cols <= 0)
        return false;
    if (cfg.cols % kBlockSize != 0)
        return false;
    if (cfg.vectorized && (cfg.cols / kBlockSize) % 8 != 0)
        return false;
    return true;
}

std::vector<LayernormConfig>
layernormTuneSpace(const GpuArch &arch, const LayernormConfig &seed)
{
    std::vector<LayernormConfig> out;
    out.push_back(seed);
    LayernormConfig flipped = seed;
    flipped.vectorized = !seed.vectorized;
    if (layernormConfigValid(arch, flipped))
        out.push_back(flipped);
    return out;
}

} // namespace ops
} // namespace graphene
