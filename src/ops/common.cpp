#include "ops/common.h"

#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace ops
{

ThreadGroup
perThread(int64_t blockSize)
{
    return ThreadGroup::threads("#t", Layout::vector(1), blockSize);
}

ThreadGroup
perWarp(int64_t blockSize)
{
    return ThreadGroup::threads("#warp", Layout::vector(32), blockSize);
}

ThreadGroup
perQuadPair(int64_t blockSize)
{
    return ThreadGroup::threads(
        "#qp", Layout(IntTuple{4, 2}, IntTuple{1, 16}), blockSize);
}

ExprPtr
tid(int64_t blockSize)
{
    return variable("tid", blockSize);
}

ExprPtr
bid(int64_t gridSize)
{
    return variable("bid", gridSize);
}

std::vector<StmtPtr>
stageTileToShared(const GpuArch &arch, int64_t blockSize,
                  const std::string &srcBuffer, ExprPtr srcBase,
                  int64_t srcRowStride, int64_t rows, int64_t cols,
                  const TensorView &dstView, const std::string &stageRegs,
                  ExprPtr rowLimit, const std::string &zeroRegs)
{
    diag::Scope scope("stage-tile(" + dstView.buffer() + ")");
    GRAPHENE_CHECK(cols % 8 == 0)
        << "tile width " << cols << " must be a multiple of 8";
    const int64_t chunks = rows * cols / 8;
    GRAPHENE_CHECK(chunks % blockSize == 0)
        << "tile of " << chunks << " 8-element chunks not divisible by "
        << blockSize << " threads";
    const int64_t perThreadChunks = chunks / blockSize;
    const int64_t chunksPerRow = cols / 8;

    auto one = perThread(blockSize);
    std::vector<StmtPtr> stmts;
    for (int64_t i = 0; i < perThreadChunks; ++i) {
        // chunk = tid + i*blockSize -> (row, colChunk).
        ExprPtr chunk = add(tid(blockSize),
                            constant(i * blockSize));
        ExprPtr row = floorDiv(chunk, constant(chunksPerRow));
        ExprPtr colChunk = mod(chunk, constant(chunksPerRow));
        ExprPtr srcOff = add(srcBase,
                             add(mul(row, constant(srcRowStride)),
                                 mul(colChunk, constant(8))));
        TensorView src("%stage_src", srcBuffer, Layout::vector(8),
                       ScalarType::Fp16, MemorySpace::GL);
        src = src.offsetBy(srcOff);
        TensorView dst = dstView.index({row, mul(colChunk, constant(8))})
                             .withLayout(Layout::vector(8));
        std::vector<StmtPtr> doMove;
        if (arch.hasCpAsync) {
            doMove.push_back(call(Spec::move(one, src, dst)));
        } else {
            TensorView regs("%stg", stageRegs, Layout::vector(8),
                            ScalarType::Fp16, MemorySpace::RF);
            doMove.push_back(call(Spec::move(one, src, regs)));
            doMove.push_back(call(Spec::move(one, regs, dst)));
        }
        if (rowLimit) {
            GRAPHENE_CHECK(!zeroRegs.empty())
                << "predicated staging needs a zero register buffer";
            TensorView zero("%zero", zeroRegs, Layout::vector(8),
                            ScalarType::Fp16, MemorySpace::RF);
            stmts.push_back(ifStmt(
                lessThan(row, rowLimit), std::move(doMove),
                {call(Spec::move(one, zero, dst))}));
        } else {
            stmts.insert(stmts.end(), doMove.begin(), doMove.end());
        }
    }
    return stmts;
}

std::vector<StmtPtr>
stageTileToSharedTransposed(int64_t blockSize,
                            const std::string &srcBuffer, ExprPtr srcBase,
                            int64_t srcRowStride, int64_t rows,
                            int64_t cols, const TensorView &dstView,
                            const std::string &stageRegs)
{
    diag::Scope scope("stage-tile-transposed(" + dstView.buffer() + ")");
    GRAPHENE_CHECK(cols % 8 == 0)
        << "tile width " << cols << " must be a multiple of 8";
    const int64_t chunks = rows * cols / 8;
    GRAPHENE_CHECK(chunks % blockSize == 0)
        << "transposed staging: " << chunks
        << " chunks not divisible by " << blockSize << " threads";
    const int64_t chunksPerRow = cols / 8;
    auto one = perThread(blockSize);
    std::vector<StmtPtr> stmts;
    for (int64_t i = 0; i < chunks / blockSize; ++i) {
        ExprPtr chunk = add(tid(blockSize), constant(i * blockSize));
        ExprPtr row = floorDiv(chunk, constant(chunksPerRow));
        ExprPtr col0 = mul(mod(chunk, constant(chunksPerRow)),
                           constant(8));
        ExprPtr srcOff = add(srcBase,
                             add(mul(row, constant(srcRowStride)), col0));
        TensorView src("%stage_src", srcBuffer, Layout::vector(8),
                       ScalarType::Fp16, MemorySpace::GL);
        src = src.offsetBy(srcOff);
        TensorView stg("%stgv", stageRegs, Layout::vector(8),
                       ScalarType::Fp16, MemorySpace::RF);
        stmts.push_back(call(Spec::move(one, src, stg)));
        for (int64_t j = 0; j < 8; ++j) {
            // dst[col0 + j][row] — one scalar store per element.
            TensorView dstE = dstView
                                  .index({add(col0, constant(j)), row})
                                  .withLayout(Layout());
            TensorView stgE("%stge", stageRegs, Layout(),
                            ScalarType::Fp16, MemorySpace::RF);
            stgE = stgE.offsetBy(constant(j));
            stmts.push_back(call(Spec::move(one, stgE, dstE)));
        }
    }
    return stmts;
}

TensorView
scalarReg(const std::string &buffer, int64_t offset, ScalarType scalar)
{
    TensorView v("%r", buffer, Layout(), scalar, MemorySpace::RF);
    return offset ? v.offsetBy(constant(offset)) : v;
}

TensorView
vecReg(const std::string &buffer, int64_t count, ScalarType scalar,
       int64_t offset)
{
    TensorView v("%r", buffer, Layout::vector(count), scalar,
                 MemorySpace::RF);
    return offset ? v.offsetBy(constant(offset)) : v;
}

std::vector<StmtPtr>
emitBlockAllReduce(int64_t blockSize, OpKind op,
                   const std::string &partialReg,
                   const std::string &resultReg,
                   const std::string &tmpReg,
                   const std::string &smemName)
{
    diag::Scope scope("block-allreduce");
    GRAPHENE_CHECK(blockSize % 32 == 0) << "block must be whole warps";
    const int64_t numWarps = blockSize / 32;
    auto one = perThread(blockSize);
    auto warpG = perWarp(blockSize);
    auto t = tid(blockSize);
    auto partial = scalarReg(partialReg);
    auto result = scalarReg(resultReg);
    auto tmp = scalarReg(tmpReg);

    std::vector<StmtPtr> stmts;
    // Warp allreduce: butterfly shuffles.
    for (int64_t delta : {16, 8, 4, 2, 1}) {
        stmts.push_back(call(Spec::shfl(ShflMode::Bfly, delta, warpG,
                                        partial, tmp)));
        stmts.push_back(call(Spec::binary(op, one, partial, tmp,
                                          partial)));
    }
    if (numWarps == 1) {
        stmts.push_back(call(Spec::move(one, partial, result)));
        return stmts;
    }
    // One slot per warp, then every thread folds the partials.
    TensorView slots("%slots", smemName, Layout::vector(numWarps),
                     ScalarType::Fp32, MemorySpace::SH);
    stmts.push_back(ifStmt(
        lessThan(mod(t, constant(32)), constant(1)),
        {call(Spec::move(one, partial,
                         slots.index({floorDiv(t, constant(32))})))}));
    stmts.push_back(syncThreads());
    stmts.push_back(call(Spec::move(one, slots.index({constant(0)}),
                                    result)));
    for (int64_t w = 1; w < numWarps; ++w) {
        stmts.push_back(call(Spec::move(one, slots.index({constant(w)}),
                                        tmp)));
        stmts.push_back(call(Spec::binary(op, one, result, tmp,
                                          result)));
    }
    // Make the slots reusable by a subsequent reduction.
    stmts.push_back(syncThreads());
    return stmts;
}

} // namespace ops
} // namespace graphene
