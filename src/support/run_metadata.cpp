#include "support/run_metadata.h"

#include <ctime>

#include <unistd.h>

#include "support/events.h"

#ifndef GRAPHENE_GIT_SHA
#define GRAPHENE_GIT_SHA "unknown"
#endif

namespace graphene
{

json::Value
runMetadata(int threads)
{
    json::Value meta = json::Value::object();
    meta["git_sha"] = GRAPHENE_GIT_SHA;

    char stamp[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    if (gmtime_r(&now, &utc))
        std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &utc);
    meta["timestamp"] = stamp;

    char host[256];
    if (gethostname(host, sizeof host) == 0) {
        host[sizeof host - 1] = '\0';
        meta["hostname"] = host;
    } else {
        meta["hostname"] = "unknown";
    }

    meta["threads"] = threads;
    return meta;
}

void
stampEventCounters(json::Value &meta)
{
    meta["counters"] = events::global().countersToJson();
}

} // namespace graphene
