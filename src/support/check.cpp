#include "support/check.h"

namespace graphene
{

void
fatal(const std::string &msg)
{
    throw Error(msg);
}

void
panic(const std::string &msg)
{
    throw InternalError(msg);
}

} // namespace graphene
