#include "support/check.h"

#include "support/diag.h"

namespace graphene
{

void
fatal(const std::string &msg)
{
    diag::raise({diag::Severity::Error, "check", msg,
                 diag::currentPath(), -1},
                /*internal=*/false);
}

void
panic(const std::string &msg)
{
    diag::raise({diag::Severity::Error, "internal", msg,
                 diag::currentPath(), -1},
                /*internal=*/true);
}

} // namespace graphene
