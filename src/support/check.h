/**
 * @file
 * Error-handling primitives for the Graphene library.
 *
 * Following the gem5 convention we distinguish two failure classes:
 *  - GRAPHENE_CHECK / graphene::fatal: user-facing errors (malformed IR,
 *    shapes that do not divide, unmatched atomic specs).  These raise
 *    graphene::Error which callers may catch and report.
 *  - GRAPHENE_ASSERT / graphene::panic: internal invariant violations
 *    (library bugs).  These raise graphene::InternalError.
 */

#ifndef GRAPHENE_SUPPORT_CHECK_H
#define GRAPHENE_SUPPORT_CHECK_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace graphene
{

/** Base class for all errors raised by the Graphene library. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raised on violated internal invariants (i.e., library bugs). */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &msg) : Error(msg) {}
};

/** Raise a user-facing error with a formatted message. */
[[noreturn]] void fatal(const std::string &msg);

/** Raise an internal error with a formatted message. */
[[noreturn]] void panic(const std::string &msg);

namespace detail
{

/** Stream-style message builder used by the CHECK macros. */
class MessageBuilder
{
  public:
    template <typename T>
    MessageBuilder &
    operator<<(const T &value)
    {
        stream_ << value;
        return *this;
    }

    std::string str() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

} // namespace detail

} // namespace graphene

/**
 * Check a user-facing condition; raises graphene::Error on failure.
 * Usage: GRAPHENE_CHECK(a == b) << "a and b differ: " << a << " vs " << b;
 */
#define GRAPHENE_CHECK(cond)                                                 \
    if (cond) {                                                              \
    } else                                                                   \
        for (::graphene::detail::MessageBuilder gph_mb;;                     \
             ::graphene::fatal(std::string("check failed: " #cond " @ ")     \
                               + __FILE__ + ":" + std::to_string(__LINE__)   \
                               + ": " + gph_mb.str()))                       \
        gph_mb

/** Check an internal invariant; raises graphene::InternalError on failure. */
#define GRAPHENE_ASSERT(cond)                                                \
    if (cond) {                                                              \
    } else                                                                   \
        for (::graphene::detail::MessageBuilder gph_mb;;                     \
             ::graphene::panic(std::string("assert failed: " #cond " @ ")    \
                               + __FILE__ + ":" + std::to_string(__LINE__)   \
                               + ": " + gph_mb.str()))                       \
        gph_mb

#endif // GRAPHENE_SUPPORT_CHECK_H
