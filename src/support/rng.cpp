#include "support/rng.h"

#include <cmath>

namespace graphene
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

double
Rng::uniform(double lo, double hi)
{
    return lo + uniform() * (hi - lo);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    return lo + static_cast<int64_t>(next() % static_cast<uint64_t>(hi - lo + 1));
}

double
Rng::normal()
{
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<float>
Rng::uniformVector(size_t n, float lo, float hi)
{
    std::vector<float> out(n);
    for (auto &v : out)
        v = static_cast<float>(uniform(lo, hi));
    return out;
}

} // namespace graphene
