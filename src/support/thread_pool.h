/**
 * @file
 * A persistent host thread pool for the simulator's parallel block
 * execution and the compilation service's request handling.
 *
 * Semantics: run(n, fn) executes fn(0..n-1) with the *caller
 * participating*, blocks until every task finished, and rethrows the
 * exception of the lowest-indexed failed task.  Tasks are claimed from
 * an atomic counter, so n may exceed the worker count (tasks queue
 * implicitly).  Determinism is the caller's contract: the simulator
 * shards blocks into contiguous per-task ranges keyed by the
 * *requested* thread count, never by the physical worker count, so
 * results do not depend on the machine.
 *
 * Concurrency: run() may be driven from any number of threads at once,
 * including from a task running inside this very pool (nested jobs) —
 * concurrent jobs queue and share the workers, and every caller helps
 * execute its own job so forward progress never depends on a free
 * worker.  After shutdown() (or during destruction) run() degrades to
 * inline execution on the calling thread instead of failing, so
 * late-arriving work during teardown completes instead of crashing.
 */

#ifndef GRAPHENE_SUPPORT_THREAD_POOL_H
#define GRAPHENE_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace graphene
{

class ThreadPool
{
  public:
    /** Pool with hardwareThreads() - 1 workers (caller is the +1). */
    ThreadPool();

    /** Pool with exactly @p workers background threads (may be 0). */
    explicit ThreadPool(int workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Process-wide shared pool (lazily constructed). */
    static ThreadPool &global();

    /**
     * Size hint for global(): the first global() call constructs the
     * pool with @p workers background threads instead of the hardware
     * default (`serve --threads N`).  A no-op once the global pool
     * exists; negative restores the default.
     */
    static void setGlobalWorkers(int workers);

    /** max(1, std::thread::hardware_concurrency()). */
    static int hardwareThreads();

    int workerCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Run fn(i) for i in [0, n); the caller participates and the call
     * returns only when all tasks completed.  If tasks threw, the
     * exception of the lowest task index is rethrown.  Safe to call
     * concurrently from multiple threads and from inside pool tasks;
     * after shutdown() the tasks execute inline on the caller.
     */
    void run(int64_t n, const std::function<void(int64_t)> &fn);

    /**
     * Stop and join the workers (idempotent).  In-flight jobs finish
     * first — their callers participate until completion — and later
     * run() calls execute inline.  Must not be called from a pool
     * task.
     */
    void shutdown();

    /** True once shutdown() has been requested. */
    bool isShutdown() const;

  private:
    struct Job
    {
        int64_t n = 0;
        const std::function<void(int64_t)> *fn = nullptr;
        std::atomic<int64_t> next{0};
        std::atomic<int64_t> pending{0};
        std::vector<std::exception_ptr> errors;
    };

    void workerLoop();
    void runTasks(Job &job);
    std::shared_ptr<Job> claimableLocked() const;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    /** Jobs with unclaimed or unfinished tasks, in arrival order.
     *  Each run() call removes its own job once it completed. */
    std::deque<std::shared_ptr<Job>> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace graphene

#endif // GRAPHENE_SUPPORT_THREAD_POOL_H
