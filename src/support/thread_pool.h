/**
 * @file
 * A minimal persistent host thread pool for the simulator's parallel
 * block execution.
 *
 * Semantics are deliberately narrow: run(n, fn) executes fn(0..n-1)
 * with the *caller participating*, blocks until every task finished,
 * and rethrows the exception of the lowest-indexed failed task.  Tasks
 * are claimed from an atomic counter, so n may exceed the worker count
 * (tasks queue implicitly).  Determinism is the caller's contract: the
 * simulator shards blocks into contiguous per-task ranges keyed by the
 * *requested* thread count, never by the physical worker count, so
 * results do not depend on the machine.
 *
 * run() is not reentrant and must be driven from one thread at a time
 * (the simulator's launch path is single-threaded).
 */

#ifndef GRAPHENE_SUPPORT_THREAD_POOL_H
#define GRAPHENE_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace graphene
{

class ThreadPool
{
  public:
    /** Pool with hardwareThreads() - 1 workers (caller is the +1). */
    ThreadPool();

    /** Pool with exactly @p workers background threads (may be 0). */
    explicit ThreadPool(int workers);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Process-wide shared pool (lazily constructed). */
    static ThreadPool &global();

    /** max(1, std::thread::hardware_concurrency()). */
    static int hardwareThreads();

    int workerCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Run fn(i) for i in [0, n); the caller participates and the call
     * returns only when all tasks completed.  If tasks threw, the
     * exception of the lowest task index is rethrown.
     */
    void run(int64_t n, const std::function<void(int64_t)> &fn);

  private:
    struct Job
    {
        int64_t n = 0;
        const std::function<void(int64_t)> *fn = nullptr;
        std::atomic<int64_t> next{0};
        std::atomic<int64_t> pending{0};
        std::vector<std::exception_ptr> errors;
    };

    void workerLoop();
    void runTasks(Job &job);

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::shared_ptr<Job> job_;
    uint64_t generation_ = 0;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

} // namespace graphene

#endif // GRAPHENE_SUPPORT_THREAD_POOL_H
