#include "support/diag.h"

#include <vector>

#include "support/check.h"

namespace graphene
{
namespace diag
{

namespace
{

/** Innermost open provenance frame of this thread. */
thread_local FramePtr tlFrame;

/** Stack of active collect-mode sinks (innermost last). */
thread_local std::vector<Collector *> tlCollectors;

} // namespace

std::string
severityName(Severity s)
{
    switch (s) {
      case Severity::Note: return "note";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "?";
}

std::string
Frame::path() const
{
    if (!parent_)
        return label_;
    return parent_->path() + "/" + label_;
}

std::string
Frame::root() const
{
    const Frame *f = this;
    while (f->parent_)
        f = f->parent_.get();
    return f->label_;
}

FramePtr
currentFrame()
{
    return tlFrame;
}

std::string
currentPath()
{
    return tlFrame ? tlFrame->path() : std::string();
}

Scope::Scope(std::string label)
{
    tlFrame = std::make_shared<const Frame>(std::move(label), tlFrame);
}

Scope::~Scope()
{
    if (tlFrame)
        tlFrame = tlFrame->parent();
}

std::string
Diagnostic::str() const
{
    std::string out = severityName(severity);
    if (!code.empty())
        out += "[" + code + "]";
    out += ": " + message;
    if (!provenance.empty())
        out += "\n  at decomposition step " + provenance;
    return out;
}

Collector::Collector()
{
    tlCollectors.push_back(this);
}

Collector::~Collector()
{
    if (!tlCollectors.empty() && tlCollectors.back() == this)
        tlCollectors.pop_back();
}

bool
Collector::hasErrors() const
{
    for (const Diagnostic &d : collected_)
        if (d.severity == Severity::Error)
            return true;
    return false;
}

bool
report(Diagnostic d)
{
    if (!tlCollectors.empty()) {
        tlCollectors.back()->collected_.push_back(std::move(d));
        return true;
    }
    if (d.severity == Severity::Error)
        raise(std::move(d));
    return false;
}

void
raise(Diagnostic d, bool internal)
{
    if (d.provenance.empty())
        d.provenance = currentPath();
    if (internal)
        throw InternalError(d.str());
    throw Error(d.str());
}

} // namespace diag
} // namespace graphene
