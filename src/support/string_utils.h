/**
 * @file
 * Small string helpers used across the Graphene library.
 */

#ifndef GRAPHENE_SUPPORT_STRING_UTILS_H
#define GRAPHENE_SUPPORT_STRING_UTILS_H

#include <sstream>
#include <string>
#include <vector>

namespace graphene
{

/** Join the elements of @p items with @p sep, using operator<< to print. */
template <typename Container>
std::string
join(const Container &items, const std::string &sep)
{
    std::ostringstream out;
    bool first = true;
    for (const auto &item : items) {
        if (!first)
            out << sep;
        out << item;
        first = false;
    }
    return out.str();
}

/** Split @p text on character @p sep (no empty-trailing suppression). */
std::vector<std::string> split(const std::string &text, char sep);

/** Strip leading and trailing whitespace. */
std::string strip(const std::string &text);

/** True if @p text starts with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** Indent every line of @p text by @p spaces spaces. */
std::string indent(const std::string &text, int spaces);

/** Replace all occurrences of @p from in @p text with @p to. */
std::string replaceAll(std::string text, const std::string &from,
                       const std::string &to);

} // namespace graphene

#endif // GRAPHENE_SUPPORT_STRING_UTILS_H
