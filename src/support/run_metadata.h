/**
 * @file
 * Run metadata embedded in machine-readable reports: which build of the
 * code produced a report, where, and when.  CI artifacts (BENCH_*.json)
 * carry this so two reports can be compared knowing exactly what they
 * measured (see tools/bench_diff).
 */

#ifndef GRAPHENE_SUPPORT_RUN_METADATA_H
#define GRAPHENE_SUPPORT_RUN_METADATA_H

#include "support/json.h"

namespace graphene
{

/**
 * Metadata object for the current process:
 *   { "git_sha": "<short sha or unknown>",
 *     "timestamp": "<ISO-8601 UTC>",
 *     "hostname": "<gethostname() or unknown>",
 *     "threads": <threads> }
 * @p threads is the caller-resolved worker-thread count (simulator
 * configuration), recorded so perf numbers are interpretable.
 */
json::Value runMetadata(int threads);

/**
 * Stamp the global event log's counter totals into @p meta as
 * meta["counters"] (a sorted object, possibly empty).  Benches call
 * this when writing BENCH_*.json so tools/bench_diff --counters can
 * flag counter regressions (a dropped fusion count, fewer kernels
 * verified) alongside timing ones.  Counters are sums, so the stamp
 * is deterministic across worker-thread counts.
 */
void stampEventCounters(json::Value &meta);

} // namespace graphene

#endif // GRAPHENE_SUPPORT_RUN_METADATA_H
