#include "support/thread_pool.h"

#include <algorithm>

namespace graphene
{

ThreadPool::ThreadPool() : ThreadPool(hardwareThreads() - 1) {}

ThreadPool::ThreadPool(int workers)
{
    workers = std::max(0, workers);
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

int
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void
ThreadPool::run(int64_t n, const std::function<void(int64_t)> &fn)
{
    if (n <= 0)
        return;
    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;
    job->pending.store(n, std::memory_order_relaxed);
    job->errors.resize(static_cast<size_t>(n));
    {
        std::lock_guard<std::mutex> lk(mutex_);
        job_ = job;
        ++generation_;
    }
    wake_.notify_all();
    runTasks(*job);
    {
        std::unique_lock<std::mutex> lk(mutex_);
        idle_.wait(lk, [&] {
            return job->pending.load(std::memory_order_acquire) == 0;
        });
        if (job_ == job)
            job_ = nullptr;
    }
    for (auto &err : job->errors)
        if (err)
            std::rethrow_exception(err);
}

void
ThreadPool::workerLoop()
{
    uint64_t seenGeneration = 0;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            wake_.wait(lk, [&] {
                return stop_ || (job_ && generation_ != seenGeneration);
            });
            if (stop_)
                return;
            seenGeneration = generation_;
            job = job_;
        }
        runTasks(*job);
    }
}

void
ThreadPool::runTasks(Job &job)
{
    for (;;) {
        const int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return;
        try {
            (*job.fn)(i);
        } catch (...) {
            job.errors[static_cast<size_t>(i)] = std::current_exception();
        }
        if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lk(mutex_);
            idle_.notify_all();
        }
    }
}

} // namespace graphene
