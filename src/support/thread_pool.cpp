#include "support/thread_pool.h"

#include <algorithm>

namespace graphene
{

ThreadPool::ThreadPool() : ThreadPool(hardwareThreads() - 1) {}

ThreadPool::ThreadPool(int workers)
{
    workers = std::max(0, workers);
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (stop_)
            return;
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();
}

bool
ThreadPool::isShutdown() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return stop_;
}

namespace
{
/** Worker-count hint consumed by global()'s first construction. */
std::atomic<int> gGlobalWorkers{-1};
} // namespace

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool([] {
        const int hint = gGlobalWorkers.load(std::memory_order_relaxed);
        return hint >= 0 ? hint : hardwareThreads() - 1;
    }());
    return pool;
}

void
ThreadPool::setGlobalWorkers(int workers)
{
    gGlobalWorkers.store(workers, std::memory_order_relaxed);
}

int
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void
ThreadPool::run(int64_t n, const std::function<void(int64_t)> &fn)
{
    if (n <= 0)
        return;
    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &fn;
    job->pending.store(n, std::memory_order_relaxed);
    job->errors.resize(static_cast<size_t>(n));
    bool queued = false;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        // After shutdown (or with zero workers) nobody would ever pick
        // the job up, so skip the queue entirely: the caller runs every
        // task inline below and the wait degenerates to a no-op.
        if (!stop_ && !workers_.empty()) {
            queue_.push_back(job);
            queued = true;
        }
    }
    if (queued)
        wake_.notify_all();
    runTasks(*job);
    if (queued) {
        std::unique_lock<std::mutex> lk(mutex_);
        idle_.wait(lk, [&] {
            return job->pending.load(std::memory_order_acquire) == 0;
        });
        const auto it = std::find(queue_.begin(), queue_.end(), job);
        if (it != queue_.end())
            queue_.erase(it);
    }
    for (auto &err : job->errors)
        if (err)
            std::rethrow_exception(err);
}

/** First queued job with unclaimed tasks (caller must hold mutex_). */
std::shared_ptr<ThreadPool::Job>
ThreadPool::claimableLocked() const
{
    for (const auto &job : queue_)
        if (job->next.load(std::memory_order_relaxed) < job->n)
            return job;
    return nullptr;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mutex_);
            wake_.wait(lk, [&] {
                return stop_ || claimableLocked() != nullptr;
            });
            if (stop_)
                return; // unclaimed tasks are finished by their caller
            job = claimableLocked();
            if (!job)
                continue; // raced with another worker; re-wait
        }
        runTasks(*job);
    }
}

void
ThreadPool::runTasks(Job &job)
{
    for (;;) {
        const int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.n)
            return;
        try {
            (*job.fn)(i);
        } catch (...) {
            job.errors[static_cast<size_t>(i)] = std::current_exception();
        }
        if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lk(mutex_);
            idle_.notify_all();
        }
    }
}

} // namespace graphene
