/**
 * @file
 * Structured diagnostics and decomposition provenance.
 *
 * Every diagnostic carries a severity, a stable kebab-case code, a
 * message, and — when known — the *decomposition provenance* of the IR
 * construct it concerns: the chain of builder steps
 * ("tc_gemm/main-loop/stage(%A)") that was open when the construct was
 * created.  Provenance frames are pushed with RAII diag::Scope guards
 * by the op builders; ir::Spec and ir::Stmt stamp the innermost open
 * frame at construction, so any later pipeline stage (verifier, atomic
 * matcher, codegen, simulator) can report *which decomposition step*
 * produced the offending IR.
 *
 * Two delivery modes:
 *  - throw mode (default): error-severity diagnostics raise
 *    graphene::Error (or InternalError) whose what() is the formatted
 *    diagnostic; warnings/notes are returned to the caller.
 *  - collect mode: while a diag::Collector is alive on the thread,
 *    report() appends every diagnostic to it instead of throwing —
 *    used by the verifier and the `explain --lint` analysis to gather
 *    all findings in one pass.
 */

#ifndef GRAPHENE_SUPPORT_DIAG_H
#define GRAPHENE_SUPPORT_DIAG_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace graphene
{
namespace diag
{

enum class Severity
{
    Note,
    Warning,
    Error,
};

std::string severityName(Severity s);

/**
 * One immutable provenance frame; frames form a parent chain from the
 * originating op builder down to the decomposition step.
 */
class Frame
{
  public:
    Frame(std::string label, std::shared_ptr<const Frame> parent)
        : label_(std::move(label)), parent_(std::move(parent))
    {}

    const std::string &label() const { return label_; }
    const std::shared_ptr<const Frame> &parent() const { return parent_; }

    /** Root-to-leaf path, e.g. "tc_gemm/main-loop/stage(%A)". */
    std::string path() const;

    /** The originating builder (root frame label). */
    std::string root() const;

  private:
    std::string label_;
    std::shared_ptr<const Frame> parent_;
};

using FramePtr = std::shared_ptr<const Frame>;

/** Innermost provenance frame open on this thread (null if none). */
FramePtr currentFrame();

/** Path of the innermost open frame ("" if none). */
std::string currentPath();

/**
 * RAII provenance scope: pushes a frame for the duration of a builder
 * step.  Op builders open one per logical decomposition decision.
 */
class Scope
{
  public:
    explicit Scope(std::string label);
    ~Scope();

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;
};

/** One structured diagnostic. */
struct Diagnostic
{
    Severity severity = Severity::Error;
    /** Stable kebab-case code, e.g. "atomic-match", "sanitizer-trap". */
    std::string code;
    std::string message;
    /** Decomposition provenance path ("" if unknown). */
    std::string provenance;
    /** Anchoring statement id (-1 if not tied to a statement). */
    int64_t stmtId = -1;

    /**
     * Formatted text:
     *   error[atomic-match]: no atomic spec matches ...
     *     at decomposition step tc_gemm/main-loop/stage(%A)
     */
    std::string str() const;
};

/**
 * Collect-mode sink.  While alive on a thread, report() appends to the
 * innermost Collector instead of throwing/returning.  Nestable.
 */
class Collector
{
  public:
    Collector();
    ~Collector();

    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    const std::vector<Diagnostic> &all() const { return collected_; }
    std::vector<Diagnostic> take() { return std::move(collected_); }

    /** True if any collected diagnostic has Error severity. */
    bool hasErrors() const;

  private:
    friend bool report(Diagnostic d);
    std::vector<Diagnostic> collected_;
};

/**
 * Deliver a diagnostic.  In collect mode, appends to the innermost
 * Collector and returns true.  In throw mode, Error severity raises
 * graphene::Error with the formatted text; Warning/Note return false
 * (the caller decides whether to print them).
 */
bool report(Diagnostic d);

/**
 * Raise a diagnostic unconditionally: throws graphene::Error (or
 * graphene::InternalError when @p internal) with the formatted text.
 * Used by fatal()/panic() and trap-mode sanitizer findings, where the
 * caller cannot continue regardless of mode.
 */
[[noreturn]] void raise(Diagnostic d, bool internal = false);

} // namespace diag
} // namespace graphene

#endif // GRAPHENE_SUPPORT_DIAG_H
