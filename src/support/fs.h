/**
 * @file
 * Filesystem helpers for tools that write report files.
 *
 * Every CLI verb that takes an output path (`trace --out`,
 * `emit-cuda --line-map`, `tune --out`, `--json <path>`, ...) routes
 * through openOutputFile so a missing parent directory is created
 * instead of surfacing as a raw stream-open failure, and a genuinely
 * unwritable path fails with a structured diag::Diagnostic naming the
 * path.
 */

#ifndef GRAPHENE_SUPPORT_FS_H
#define GRAPHENE_SUPPORT_FS_H

#include <fstream>
#include <string>

namespace graphene
{

/**
 * Open @p path for writing, creating missing parent directories
 * first.  On failure raises a diag::Diagnostic (code "output-path",
 * Error severity) whose message names the offending path — delivered
 * through diag::report, so it throws graphene::Error in throw mode
 * and lands in the innermost Collector in collect mode (in which case
 * the returned stream's fail state must be checked).
 */
std::ofstream openOutputFile(const std::string &path);

/** Read a whole file into a string; raises diag code "input-path"
 *  naming the path when it cannot be opened. */
std::string readFileOrThrow(const std::string &path);

} // namespace graphene

#endif // GRAPHENE_SUPPORT_FS_H
