/**
 * @file
 * Deterministic random number generation for tests and workload
 * generators.  All Graphene experiments are reproducible: every random
 * tensor is derived from an explicit seed.
 */

#ifndef GRAPHENE_SUPPORT_RNG_H
#define GRAPHENE_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphene
{

/**
 * A small, fast, deterministic PRNG (xoshiro256** variant).
 *
 * We avoid std::mt19937 so that sequences are stable across standard
 * library implementations.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller. */
    double normal();

    /** Fill @p n floats uniform in [lo, hi). */
    std::vector<float> uniformVector(size_t n, float lo, float hi);

  private:
    uint64_t state_[4];
};

} // namespace graphene

#endif // GRAPHENE_SUPPORT_RNG_H
