/**
 * @file
 * Pipeline-wide structured event log and counter registry
 * (schema "graphene.events.v1").
 *
 * Every decision-making subsystem reports here: the CLI wraps the
 * pipeline phases (parse -> decompose -> verify -> plan-compile ->
 * tune -> schedule -> execute) in wall-clock spans, the fusion
 * scheduler emits one event per candidate considered, the tuner one
 * per enumerated config, and hot paths (kernel launches, tune-cache
 * lookups, sanitizer findings) bump named counters.  The log makes
 * the optimizer's behavior *inspectable*: what was tried, what was
 * rejected, and why — the search/decision log Roller- and Ansor-style
 * tuners ship to make cost-model behavior debuggable.
 *
 * Determinism contract: ordered records (spans, events) are only ever
 * appended from the controlling thread — worker threads touch nothing
 * but counters, which are commutative sums — so the emitted document
 * is independent of the worker-thread count.  Under deterministic
 * mode (`--deterministic`) every timestamp is zeroed as well, making
 * the output byte-identical across runs and thread counts; goldens
 * and CI `cmp` checks rely on this.
 */

#ifndef GRAPHENE_SUPPORT_EVENTS_H
#define GRAPHENE_SUPPORT_EVENTS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.h"
#include "support/schemas.h"

namespace graphene
{
namespace events
{

/**
 * Thread-safe event log: ordered records (phase spans and instant
 * events with structured fields) plus a registry of named counters.
 * All methods may be called concurrently; see the file comment for
 * what ordering is guaranteed.
 */
class EventLog
{
  public:
    static constexpr const char *kSchema = schemas::kEvents;

    EventLog();

    /** Zero all timestamps so the document bytes depend only on the
     *  sequence of calls, not on the wall clock. */
    void setDeterministic(bool on);
    bool deterministic() const;

    /** Drop every record and counter (tests; the CLI never clears). */
    void clear();

    // ---- counters -------------------------------------------------
    /** Add @p delta to counter @p name (created at zero). */
    void add(const std::string &name, int64_t delta = 1);
    /** Current value of @p name (0 if never bumped). */
    int64_t value(const std::string &name) const;
    /** All counters as a sorted JSON object. */
    json::Value countersToJson() const;

    // ---- ordered records ------------------------------------------
    /** Open a phase span; returns its record id for endSpan. */
    int64_t beginSpan(const std::string &phase);
    /** Close a span previously opened with beginSpan. */
    void endSpan(int64_t id);

    /** Append an instant event carrying a JSON object payload. */
    void emit(const std::string &name, json::Value fields);

    /** Number of ordered records so far. */
    size_t recordCount() const;

    /** The graphene.events.v1 document. */
    json::Value toJson() const;

  private:
    struct Record
    {
        int64_t seq = 0;
        bool isSpan = false;
        std::string name;
        double startUs = 0;
        double durUs = 0;
        bool closed = false; // spans only
        json::Value fields;  // events only
    };

    double nowUsLocked() const;

    mutable std::mutex mu_;
    bool deterministic_ = false;
    std::chrono::steady_clock::time_point epoch_;
    std::vector<Record> records_;
    std::map<std::string, int64_t> counters_;
};

/** The process-wide log every subsystem reports to by default. */
EventLog &global();

/**
 * The log the calling thread should report to: the innermost
 * ScopedLog override, or global() when none is active.  Library code
 * (device launches, the scheduler, the tuner) reports here so a host
 * — e.g. the compilation service — can capture one request's events
 * in isolation instead of interleaving them into process state.
 */
EventLog &current();

/**
 * RAII thread-local log override: while alive, current() on this
 * thread returns @p log.  Nestable; restores the previous override on
 * destruction.  The override is per-thread — work handed to other
 * threads (pool workers) still reports to their current() log.
 */
class ScopedLog
{
  public:
    explicit ScopedLog(EventLog &log);
    ~ScopedLog();
    ScopedLog(const ScopedLog &) = delete;
    ScopedLog &operator=(const ScopedLog &) = delete;

  private:
    EventLog *prev_;
};

/** RAII phase span on the thread's current log. */
class Span
{
  public:
    explicit Span(const std::string &phase, EventLog &log = current());
    ~Span();
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    EventLog &log_;
    int64_t id_;
};

} // namespace events
} // namespace graphene

#endif // GRAPHENE_SUPPORT_EVENTS_H
