#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "support/check.h"

namespace graphene
{
namespace json
{

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::Object;
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::Array;
    return v;
}

bool
Value::asBool() const
{
    GRAPHENE_CHECK(kind_ == Kind::Bool) << "JSON value is not a bool";
    return bool_;
}

double
Value::asNumber() const
{
    GRAPHENE_CHECK(kind_ == Kind::Number) << "JSON value is not a number";
    return num_;
}

const std::string &
Value::asString() const
{
    GRAPHENE_CHECK(kind_ == Kind::String) << "JSON value is not a string";
    return str_;
}

Value &
Value::operator[](const std::string &key)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    GRAPHENE_CHECK(kind_ == Kind::Object)
        << "JSON [] on a non-object value";
    for (auto &[k, v] : obj_)
        if (k == key)
            return v;
    obj_.emplace_back(key, Value());
    return obj_.back().second;
}

const Value &
Value::at(const std::string &key) const
{
    GRAPHENE_CHECK(kind_ == Kind::Object)
        << "JSON field lookup on a non-object value";
    for (const auto &[k, v] : obj_)
        if (k == key)
            return v;
    fatal("JSON object has no field '" + key + "'");
}

bool
Value::contains(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return false;
    for (const auto &[k, v] : obj_)
        if (k == key)
            return true;
    return false;
}

const std::vector<std::pair<std::string, Value>> &
Value::fields() const
{
    GRAPHENE_CHECK(kind_ == Kind::Object)
        << "JSON fields() on a non-object value";
    return obj_;
}

void
Value::push(Value v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    GRAPHENE_CHECK(kind_ == Kind::Array) << "JSON push on a non-array";
    arr_.push_back(std::move(v));
}

const Value &
Value::at(size_t i) const
{
    GRAPHENE_CHECK(kind_ == Kind::Array) << "JSON index on a non-array";
    GRAPHENE_CHECK(i < arr_.size())
        << "JSON array index " << i << " out of range (size "
        << arr_.size() << ")";
    return arr_[i];
}

size_t
Value::size() const
{
    return kind_ == Kind::Array ? arr_.size() : obj_.size();
}

std::string
quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace
{

std::string
formatNumber(double n)
{
    GRAPHENE_CHECK(std::isfinite(n))
        << "JSON cannot represent non-finite number";
    // Integers print exactly; everything else round-trips via %.17g
    // trimmed to the shortest representation that parses back equal.
    if (n == std::floor(n) && std::fabs(n) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(n));
        return buf;
    }
    for (int prec = 6; prec <= 17; ++prec) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.*g", prec, n);
        if (std::strtod(buf, nullptr) == n)
            return buf;
    }
    return "0";
}

void
dumpRec(const Value &v, std::string &out, int indent, int level)
{
    const std::string nl = indent > 0 ? "\n" : "";
    const std::string pad =
        indent > 0 ? std::string(static_cast<size_t>(indent * (level + 1)),
                                 ' ')
                   : "";
    const std::string padEnd =
        indent > 0 ? std::string(static_cast<size_t>(indent * level), ' ')
                   : "";
    const std::string sep = indent > 0 ? ": " : ":";
    switch (v.kind()) {
      case Value::Kind::Null: out += "null"; break;
      case Value::Kind::Bool: out += v.asBool() ? "true" : "false"; break;
      case Value::Kind::Number: out += formatNumber(v.asNumber()); break;
      case Value::Kind::String: out += quote(v.asString()); break;
      case Value::Kind::Array: {
        if (v.size() == 0) {
            out += "[]";
            break;
        }
        out += "[" + nl;
        for (size_t i = 0; i < v.size(); ++i) {
            out += pad;
            dumpRec(v.at(i), out, indent, level + 1);
            if (i + 1 < v.size())
                out += ",";
            out += nl;
        }
        out += padEnd + "]";
        break;
      }
      case Value::Kind::Object: {
        if (v.fields().empty()) {
            out += "{}";
            break;
        }
        out += "{" + nl;
        const auto &fields = v.fields();
        for (size_t i = 0; i < fields.size(); ++i) {
            out += pad + quote(fields[i].first) + sep;
            dumpRec(fields[i].second, out, indent, level + 1);
            if (i + 1 < fields.size())
                out += ",";
            out += nl;
        }
        out += padEnd + "}";
        break;
      }
    }
}

/** Strict recursive-descent JSON parser. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        skipWs();
        Value v = parseValue();
        skipWs();
        GRAPHENE_CHECK(pos_ == text_.size())
            << "trailing characters after JSON document at offset "
            << pos_;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        GRAPHENE_CHECK(pos_ < text_.size())
            << "unexpected end of JSON document";
        return text_[pos_];
    }

    void
    expect(char c)
    {
        GRAPHENE_CHECK(peek() == c)
            << "expected '" << c << "' at offset " << pos_ << ", got '"
            << text_[pos_] << "'";
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        const size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't':
            GRAPHENE_CHECK(consume("true")) << "bad literal at " << pos_;
            return Value(true);
          case 'f':
            GRAPHENE_CHECK(consume("false")) << "bad literal at " << pos_;
            return Value(false);
          case 'n':
            GRAPHENE_CHECK(consume("null")) << "bad literal at " << pos_;
            return Value();
          default: return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Value obj = Value::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            const std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            obj[key] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Value
    parseArray()
    {
        expect('[');
        Value arr = Value::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            skipWs();
            arr.push(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            GRAPHENE_CHECK(pos_ < text_.size())
                << "unterminated JSON string";
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            GRAPHENE_CHECK(pos_ < text_.size())
                << "unterminated escape in JSON string";
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                GRAPHENE_CHECK(pos_ + 4 <= text_.size())
                    << "truncated \\u escape";
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                const long code = std::strtol(hex.c_str(), nullptr, 16);
                // Basic-multilingual-plane only; encode as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fatal("bad escape character in JSON string");
            }
        }
    }

    Value
    parseNumber()
    {
        const size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        GRAPHENE_CHECK(pos_ > start) << "expected JSON number at " << start;
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double n = std::strtod(tok.c_str(), &end);
        GRAPHENE_CHECK(end && *end == '\0')
            << "malformed JSON number '" << tok << "'";
        return Value(n);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpRec(*this, out, indent, 0);
    if (indent > 0)
        out += "\n";
    return out;
}

Value
Value::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

} // namespace json
} // namespace graphene
