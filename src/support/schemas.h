/**
 * @file
 * The single registry of machine-readable document schema versions.
 *
 * Every JSON surface the toolchain emits is stamped with a
 * "graphene.<kind>.v1" schema string; CI jobs grep emitted documents
 * for these exact literals and tools (bench_diff, external dashboards)
 * dispatch on them.  Defining them in one place keeps the emitters,
 * the parsers, and the CI checks from drifting apart: bump a version
 * here and every producer/consumer pair moves together (or fails to
 * compile, which is the point).
 */

#ifndef GRAPHENE_SUPPORT_SCHEMAS_H
#define GRAPHENE_SUPPORT_SCHEMAS_H

namespace graphene
{
namespace schemas
{

/** Benchmark row documents (BENCH_*.json, --report-* flags). */
inline constexpr const char *kBench = "graphene.bench.v1";

/** Per-kernel timing profile with the attribution tree. */
inline constexpr const char *kProfile = "graphene.profile.v1";

/** Chrome-trace export of a profiled kernel block. */
inline constexpr const char *kTrace = "graphene.trace.v1";

/** CUDA line-number -> IR statement sidecar (emit-cuda --line-map). */
inline constexpr const char *kLinemap = "graphene.linemap.v1";

/** Annotated decomposition tree (explain --json). */
inline constexpr const char *kExplain = "graphene.explain.v1";

/** Pipeline-wide event log (--events on any verb). */
inline constexpr const char *kEvents = "graphene.events.v1";

/** Persistent autotuning cache (tune --out). */
inline constexpr const char *kTune = "graphene.tune.v1";

/** Op-DAG workload description (schedule file --graph). */
inline constexpr const char *kGraph = "graphene.graph.v1";

/** Fusion schedule with decision traces (schedule --json). */
inline constexpr const char *kSchedule = "graphene.schedule.v1";

/** Schedule-level execution profile (schedule --profile). */
inline constexpr const char *kGraphProfile = "graphene.graphprofile.v1";

/** Simulated hardware-counter metrics and roofline placement
 *  (metrics --json, embedded in profile --json). */
inline constexpr const char *kMetrics = "graphene.metrics.v1";

/** One compilation-service request line (newline-delimited JSON over
 *  the unix socket; `request` CLI verb, bench_service). */
inline constexpr const char *kRequest = "graphene.request.v1";

/** One compilation-service response line (the daemon's answer to a
 *  kRequest; carries artifacts, cache state, or a structured error). */
inline constexpr const char *kResponse = "graphene.response.v1";

} // namespace schemas
} // namespace graphene

#endif // GRAPHENE_SUPPORT_SCHEMAS_H
