#include "support/fs.h"

#include <filesystem>
#include <sstream>
#include <system_error>

#include "support/diag.h"

namespace graphene
{

std::ofstream
openOutputFile(const std::string &path)
{
    namespace fs = std::filesystem;
    const fs::path p(path);
    const fs::path parent = p.parent_path();
    std::string detail;
    if (!parent.empty()) {
        std::error_code ec;
        fs::create_directories(parent, ec);
        if (ec)
            detail = " (cannot create directory " + parent.string()
                + ": " + ec.message() + ")";
    }
    std::ofstream f(path);
    if (!f) {
        diag::Diagnostic d;
        d.severity = diag::Severity::Error;
        d.code = "output-path";
        d.message = "cannot open '" + path + "' for writing" + detail;
        diag::report(std::move(d));
    }
    return f;
}

std::string
readFileOrThrow(const std::string &path)
{
    std::ifstream f(path);
    if (!f) {
        diag::Diagnostic d;
        d.severity = diag::Severity::Error;
        d.code = "input-path";
        d.message = "cannot open '" + path + "' for reading";
        diag::report(std::move(d));
        return std::string();
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

} // namespace graphene
