#include "support/string_utils.h"

#include <algorithm>
#include <cctype>

namespace graphene
{

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string curr;
    for (char c : text) {
        if (c == sep) {
            parts.push_back(curr);
            curr.clear();
        } else {
            curr.push_back(c);
        }
    }
    parts.push_back(curr);
    return parts;
}

std::string
strip(const std::string &text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size()
        && text.compare(0, prefix.size(), prefix) == 0;
}

std::string
indent(const std::string &text, int spaces)
{
    std::string pad(spaces, ' ');
    std::string out;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        if (nl > pos)
            out += pad + text.substr(pos, nl - pos);
        if (nl < text.size())
            out += '\n';
        pos = nl + 1;
    }
    return out;
}

std::string
replaceAll(std::string text, const std::string &from, const std::string &to)
{
    if (from.empty())
        return text;
    size_t pos = 0;
    while ((pos = text.find(from, pos)) != std::string::npos) {
        text.replace(pos, from.size(), to);
        pos += to.size();
    }
    return text;
}

} // namespace graphene
