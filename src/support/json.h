/**
 * @file
 * A minimal JSON document model: build machine-readable reports
 * (profiles, traces, bench rows) and parse them back for validation.
 *
 * Deliberately tiny — no external dependency, insertion-ordered
 * objects so emitted reports are deterministic and diffable, and a
 * strict recursive-descent parser used by tests and tooling to verify
 * that everything the toolkit emits actually parses.
 */

#ifndef GRAPHENE_SUPPORT_JSON_H
#define GRAPHENE_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace graphene
{
namespace json
{

/** One JSON value; a tagged union over the seven JSON shapes. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double n) : kind_(Kind::Number), num_(n) {}
    Value(int64_t n) : kind_(Kind::Number), num_(static_cast<double>(n)) {}
    Value(int n) : kind_(Kind::Number), num_(n) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Value object();
    static Value array();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Object field access; inserts a Null field if missing. */
    Value &operator[](const std::string &key);

    /** Object lookup (throws if missing or not an object). */
    const Value &at(const std::string &key) const;
    bool contains(const std::string &key) const;
    const std::vector<std::pair<std::string, Value>> &fields() const;

    /** Array append / access. */
    void push(Value v);
    const Value &at(size_t i) const;
    size_t size() const; // array elements or object fields

    /**
     * Serialize.  @p indent 0 emits a compact single line; positive
     * values pretty-print with that many spaces per level.
     */
    std::string dump(int indent = 0) const;

    /** Parse a complete JSON document; throws graphene::Error. */
    static Value parse(const std::string &text);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string quote(const std::string &s);

} // namespace json
} // namespace graphene

#endif // GRAPHENE_SUPPORT_JSON_H
