#include "support/events.h"

namespace graphene
{
namespace events
{

EventLog::EventLog() : epoch_(std::chrono::steady_clock::now()) {}

void
EventLog::setDeterministic(bool on)
{
    std::lock_guard<std::mutex> lock(mu_);
    deterministic_ = on;
}

bool
EventLog::deterministic() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return deterministic_;
}

void
EventLog::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    counters_.clear();
    epoch_ = std::chrono::steady_clock::now();
}

void
EventLog::add(const std::string &name, int64_t delta)
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_[name] += delta;
}

int64_t
EventLog::value(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

json::Value
EventLog::countersToJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    json::Value obj = json::Value::object();
    for (const auto &kv : counters_) // std::map: sorted, deterministic
        obj[kv.first] = kv.second;
    return obj;
}

double
EventLog::nowUsLocked() const
{
    if (deterministic_)
        return 0;
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

int64_t
EventLog::beginSpan(const std::string &phase)
{
    std::lock_guard<std::mutex> lock(mu_);
    Record r;
    r.seq = static_cast<int64_t>(records_.size());
    r.isSpan = true;
    r.name = phase;
    r.startUs = nowUsLocked();
    records_.push_back(std::move(r));
    return records_.back().seq;
}

void
EventLog::endSpan(int64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || id >= static_cast<int64_t>(records_.size()))
        return;
    Record &r = records_[static_cast<size_t>(id)];
    if (!r.isSpan || r.closed)
        return;
    r.durUs = deterministic_ ? 0 : nowUsLocked() - r.startUs;
    r.closed = true;
}

void
EventLog::emit(const std::string &name, json::Value fields)
{
    std::lock_guard<std::mutex> lock(mu_);
    Record r;
    r.seq = static_cast<int64_t>(records_.size());
    r.name = name;
    r.startUs = nowUsLocked();
    r.fields = std::move(fields);
    records_.push_back(std::move(r));
}

size_t
EventLog::recordCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
}

json::Value
EventLog::toJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    json::Value doc = json::Value::object();
    doc["schema"] = kSchema;
    doc["deterministic"] = deterministic_;
    json::Value events = json::Value::array();
    for (const Record &r : records_) {
        json::Value e = json::Value::object();
        e["seq"] = r.seq;
        e["type"] = r.isSpan ? "span" : "event";
        e["name"] = r.name;
        e["ts_us"] = r.startUs;
        if (r.isSpan) {
            e["dur_us"] = r.durUs;
            if (!r.closed)
                e["open"] = true;
        } else if (r.fields.isObject() && r.fields.size() > 0) {
            e["fields"] = r.fields;
        }
        events.push(std::move(e));
    }
    doc["events"] = std::move(events);
    json::Value counters = json::Value::object();
    for (const auto &kv : counters_)
        counters[kv.first] = kv.second;
    doc["counters"] = std::move(counters);
    return doc;
}

EventLog &
global()
{
    static EventLog log;
    return log;
}

namespace
{
/** Innermost ScopedLog override of this thread (null = global()). */
thread_local EventLog *tlCurrent = nullptr;
} // namespace

EventLog &
current()
{
    return tlCurrent != nullptr ? *tlCurrent : global();
}

ScopedLog::ScopedLog(EventLog &log) : prev_(tlCurrent)
{
    tlCurrent = &log;
}

ScopedLog::~ScopedLog()
{
    tlCurrent = prev_;
}

Span::Span(const std::string &phase, EventLog &log)
    : log_(log), id_(log.beginSpan(phase))
{
}

Span::~Span() { log_.endSpan(id_); }

} // namespace events
} // namespace graphene
