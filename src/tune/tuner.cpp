#include "tune/tuner.h"

#include <algorithm>
#include <set>

#include "inspect/inspect.h"
#include "ir/verifier.h"
#include "sim/sim_config.h"
#include "support/events.h"
#include "support/thread_pool.h"

namespace graphene
{
namespace tune
{

namespace
{

/** Per-candidate scratch state, indexed by candidate number.  Workers
 *  write disjoint slots; every decision reads them after a barrier, so
 *  results are independent of the worker-thread count. */
struct Slot
{
    bool buildOk = false;
    bool verifyOk = false;
    int lintFindings = 0;
    bool timed = false;  // a timed simulation was attempted
    bool timeOk = false; // ... and produced a time
    double simUs = 0;
    std::string boundBy;
    std::string stage;

    bool lintClean() const
    {
        return buildOk && verifyOk && lintFindings == 0;
    }
};

double
timeCandidate(const TunableSpace &space, int64_t i, const GpuArch &arch,
              std::string *boundBy)
{
    Device dev(arch);
    space.candidates[static_cast<size_t>(i)].allocate(dev);
    Kernel kernel = space.candidates[static_cast<size_t>(i)].build();
    const sim::KernelProfile prof =
        dev.launch(kernel, LaunchMode::Timing);
    *boundBy = prof.timing.boundBy;
    return prof.timing.timeUs;
}

CandidateResult
toResult(const TunableSpace &space, const Slot &slot, int64_t i)
{
    const Candidate &cand = space.candidates[static_cast<size_t>(i)];
    CandidateResult r;
    r.index = static_cast<int>(i);
    r.params = cand.params;
    r.isSeed = cand.isSeed;
    r.simUs = slot.timeOk ? slot.simUs : -1; // -1 = evaluation failed
    r.boundBy = slot.boundBy;
    r.stage = slot.stage;
    r.lintClean = slot.lintClean();
    r.lintFindings = slot.lintFindings;
    return r;
}

} // namespace

TuneResult
runTune(const TunableSpace &space, const GpuArch &arch,
        const TuneOptions &opts)
{
    events::Span tuneSpan("tune");
    const int64_t n = static_cast<int64_t>(space.candidates.size());
    std::vector<Slot> slots(static_cast<size_t>(n));
    const int workers = sim::resolveThreads(opts.threads);
    ThreadPool pool(std::max(0, workers - 1));

    // ---- stage 1: static filter (verifier + memory-access lint) ----
    pool.run(n, [&](int64_t i) {
        Slot &s = slots[static_cast<size_t>(i)];
        try {
            Kernel kernel =
                space.candidates[static_cast<size_t>(i)].build();
            s.buildOk = true;
            s.verifyOk = verifyKernelDiags(kernel).empty();
            if (s.verifyOk) {
                int findings = 0;
                for (const diag::Diagnostic &d :
                     inspect::lintKernel(kernel, arch))
                    if (d.severity != diag::Severity::Note)
                        ++findings;
                s.lintFindings = findings;
            }
        } catch (const std::exception &) {
            s.buildOk = false;
        }
    });

    // A candidate earns a timed simulation if it is structurally valid
    // and (when the lint filter is on) predicted conflict-free.  The
    // seed/default config is NEVER pruned: it anchors the comparison.
    std::vector<int64_t> eligible;
    int64_t lintRejected = 0, invalid = 0;
    for (int64_t i = 0; i < n; ++i) {
        const Slot &s = slots[static_cast<size_t>(i)];
        const bool seed =
            space.candidates[static_cast<size_t>(i)].isSeed;
        if (!s.buildOk || !s.verifyOk) {
            ++invalid;
            if (!seed)
                continue;
        } else if (opts.lintFilter && s.lintFindings > 0 && !seed) {
            ++lintRejected;
            continue;
        }
        eligible.push_back(i);
    }

    auto evaluate = [&](const std::vector<int64_t> &batch,
                        const char *stage) {
        pool.run(static_cast<int64_t>(batch.size()), [&](int64_t t) {
            const int64_t i = batch[static_cast<size_t>(t)];
            Slot &s = slots[static_cast<size_t>(i)];
            s.timed = true;
            s.stage = stage;
            try {
                s.simUs = timeCandidate(space, i, arch, &s.boundBy);
                s.timeOk = true;
            } catch (const std::exception &) {
                s.timeOk = false;
            }
        });
    };

    // ---- stage 2: coarse grid -------------------------------------
    // With a budget, reserve a quarter of it for refinement and spread
    // the grid evenly over the eligible candidates (always including
    // the seed at position 0).
    int64_t budget = opts.budget > 0 ? opts.budget : 0;
    int64_t gridQuota = static_cast<int64_t>(eligible.size());
    if (budget > 0 && gridQuota > budget)
        gridQuota = std::max<int64_t>(1, budget - budget / 4);
    std::vector<int64_t> grid;
    std::set<int64_t> picked;
    for (int64_t i = 0; i < gridQuota; ++i) {
        const int64_t j =
            eligible[static_cast<size_t>(
                i * static_cast<int64_t>(eligible.size()) / gridQuota)];
        if (picked.insert(j).second)
            grid.push_back(j);
    }
    evaluate(grid, "grid");
    int64_t evaluated = static_cast<int64_t>(grid.size());

    // ---- stage 3: local neighborhood refinement -------------------
    auto rankedBest = [&]() {
        std::vector<int64_t> ranked;
        for (int64_t i = 0; i < n; ++i)
            if (slots[static_cast<size_t>(i)].timeOk)
                ranked.push_back(i);
        std::sort(ranked.begin(), ranked.end(),
                  [&](int64_t a, int64_t b) {
                      const Slot &sa = slots[static_cast<size_t>(a)];
                      const Slot &sb = slots[static_cast<size_t>(b)];
                      if (sa.simUs != sb.simUs)
                          return sa.simUs < sb.simUs;
                      return a < b;
                  });
        return ranked;
    };
    for (int round = 0; round < 2; ++round) {
        const int64_t remaining =
            budget > 0 ? budget - evaluated
                       : static_cast<int64_t>(eligible.size());
        if (remaining <= 0)
            break;
        std::vector<int64_t> tops = rankedBest();
        if (tops.size() > static_cast<size_t>(opts.refineTop))
            tops.resize(static_cast<size_t>(opts.refineTop));
        std::vector<int64_t> frontier;
        for (int64_t i : eligible) {
            if (slots[static_cast<size_t>(i)].timed)
                continue;
            for (int64_t t : tops)
                if (paramDistance(
                        space.candidates[static_cast<size_t>(i)].params,
                        space.candidates[static_cast<size_t>(t)].params)
                    == 1) {
                    frontier.push_back(i);
                    break;
                }
            if (static_cast<int64_t>(frontier.size()) >= remaining)
                break;
        }
        if (frontier.empty())
            break;
        evaluate(frontier, "refine");
        evaluated += static_cast<int64_t>(frontier.size());
    }

    // ---- fold ------------------------------------------------------
    TuneResult result;
    result.op = space.op;
    result.archName = space.archName;
    result.shape = space.shape;
    result.spaceHash = space.spaceHash;
    result.seed = opts.seed;
    result.budget = opts.budget;
    result.spaceSize = n;
    result.lintRejected = lintRejected;
    result.invalid = invalid;
    result.evaluated = evaluated;
    for (int64_t i = 0; i < n; ++i)
        if (slots[static_cast<size_t>(i)].timed)
            result.all.push_back(
                toResult(space, slots[static_cast<size_t>(i)], i));
    result.defaultResult = toResult(space, slots[0], 0);
    const std::vector<int64_t> ranked = rankedBest();
    result.best = ranked.empty()
        ? result.defaultResult
        : toResult(space, slots[static_cast<size_t>(ranked[0])],
                   ranked[0]);

    // Search trace: counters plus one "tune.candidate" event per
    // candidate.  Emitted here, after the parallel stages, in index
    // order — the event log is byte-identical for any worker count.
    events::EventLog &log = events::current();
    log.add("tune.space", n);
    log.add("tune.pruned_invalid", invalid);
    log.add("tune.pruned_lint", lintRejected);
    log.add("tune.evaluated", evaluated);
    int64_t budgetPruned = 0;
    for (int64_t i = 0; i < n; ++i) {
        const Slot &s = slots[static_cast<size_t>(i)];
        const Candidate &cand = space.candidates[static_cast<size_t>(i)];
        json::Value f = json::Value::object();
        f["index"] = i;
        f["params"] = paramsToJson(cand.params);
        if (cand.isSeed)
            f["seed"] = true;
        if (s.timed) {
            f["stage"] = s.stage;
            if (s.timeOk) {
                f["sim_us"] = s.simUs;
                f["bound_by"] = s.boundBy;
            } else {
                f["pruned_by"] = "sim-error";
            }
        } else if (!s.buildOk || !s.verifyOk) {
            f["pruned_by"] = "invalid";
        } else if (opts.lintFilter && s.lintFindings > 0) {
            f["pruned_by"] = "lint";
        } else {
            f["pruned_by"] = "budget";
            ++budgetPruned;
        }
        log.emit("tune.candidate", std::move(f));
    }
    log.add("tune.pruned_budget", budgetPruned);
    return result;
}

} // namespace tune
} // namespace graphene
