/**
 * @file
 * Tunable configuration spaces: the bridge between each op's concrete
 * config struct (ops/tc_gemm.h, ops/layernorm.h, ...) and the generic
 * search driver (tune/tuner.h).
 *
 * Each op contributes an enumeration function next to its config
 * struct (e.g. ops::tcGemmTuneSpace) that yields every constraint-
 * satisfying variant of a seed config.  This module wraps those
 * enumerations into a uniform Candidate list: an ordered parameter
 * assignment (for reporting, hashing, and neighborhood search) plus
 * closures that build the kernel and allocate its virtual timing
 * buffers.  Candidate 0 is always the op's seed/default config — the
 * tuner's contract is that pruning never discards it.
 */

#ifndef GRAPHENE_TUNE_SPACE_H
#define GRAPHENE_TUNE_SPACE_H

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "arch/gpu_arch.h"
#include "ir/kernel.h"
#include "ops/fmha.h"
#include "ops/layernorm.h"
#include "ops/mlp.h"
#include "ops/tc_gemm.h"
#include "runtime/device.h"
#include "support/json.h"

namespace graphene
{
namespace tune
{

/** Ordered tunable-parameter assignment, e.g. {{"bm","128"},...}.
 *  All candidates of one space carry the same keys in the same order,
 *  so parameter distance is well defined. */
using ParamMap = std::vector<std::pair<std::string, std::string>>;

/** One point of the configuration space. */
struct Candidate
{
    ParamMap params;
    /** The op's seed/default config (always candidate index 0). */
    bool isSeed = false;
    /** Build the kernel IR for this candidate. */
    std::function<Kernel()> build;
    /** Allocate the kernel's buffers as virtual timing buffers. */
    std::function<void(Device &)> allocate;
};

/**
 * Problem shape handed to buildTunableSpace.  A field left at 0 takes
 * the op's default; ops interpret the fields as in graphene-cli
 * (layernorm: m=rows, n=cols; mlp: m=batch rows; fmha: m=batch,
 * n=sequence length).
 */
struct ProblemShape
{
    int64_t m = 0;
    int64_t n = 0;
    int64_t k = 0;
    int64_t layers = 0;
};

/** A fully-enumerated tunable space for one (op, shape, arch). */
struct TunableSpace
{
    std::string op;
    std::string archName;
    /** Canonical problem-shape object; part of the cache key. */
    json::Value shape;
    /** Candidate 0 is the seed/default config. */
    std::vector<Candidate> candidates;
    /** Git-stable FNV-1a digest of op + every candidate's params:
     *  changing the space definition invalidates cached entries. */
    std::string spaceHash;
};

/** Ops with a registered tunable space ("tc-gemm", "layernorm",
 *  "mlp", "fmha"). */
std::vector<std::string> tunableOps();

/**
 * Enumerate the tunable space of @p op.  Raises a diag::Diagnostic
 * (code "tune-unknown-op") for an unregistered op name.
 */
TunableSpace buildTunableSpace(const std::string &op,
                               const GpuArch &arch,
                               const ProblemShape &shape);

/** Number of parameters whose values differ (same-key maps). */
int paramDistance(const ParamMap &a, const ParamMap &b);

/** Params as an insertion-ordered JSON object (and back). */
json::Value paramsToJson(const ParamMap &params);
ParamMap paramsFromJson(const json::Value &obj);

/** FNV-1a 64-bit hex digest of @p text (stable across builds). */
std::string fnv1aHex(const std::string &text);

/**
 * Overwrite the tunable knobs of a concrete config from a cached
 * parameter assignment (`--tuned` consumers).  Non-tunable fields
 * (problem shape, buffer names, epilogue) are left untouched.
 */
void applyParams(const ParamMap &params, ops::TcGemmConfig &cfg);
void applyParams(const ParamMap &params, ops::LayernormConfig &cfg);
void applyParams(const ParamMap &params, ops::FusedMlpConfig &cfg);
void applyParams(const ParamMap &params, ops::FmhaConfig &cfg);

/** Canonical cache-key shape objects for `--tuned` lookups; must
 *  match the shapes buildTunableSpace records. */
json::Value shapeOf(const ops::TcGemmConfig &cfg);
json::Value shapeOf(const ops::LayernormConfig &cfg);
json::Value shapeOf(const ops::FusedMlpConfig &cfg);
json::Value shapeOf(const ops::FmhaConfig &cfg);

} // namespace tune
} // namespace graphene

#endif // GRAPHENE_TUNE_SPACE_H
