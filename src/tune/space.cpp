#include "tune/space.h"

#include <algorithm>
#include <cstdio>

#include "baselines/engines.h"
#include "support/check.h"
#include "support/diag.h"

namespace graphene
{
namespace tune
{

namespace
{

std::string
boolName(bool b)
{
    return b ? "on" : "off";
}

std::string
intName(int64_t v)
{
    return std::to_string(v);
}

void
vallocFp16(Device &dev, const std::string &name, int64_t count)
{
    dev.allocateVirtual(name, ScalarType::Fp16, count);
}

ParamMap
tcGemmParams(const ops::TcGemmConfig &c)
{
    return {{"bm", intName(c.bm)},       {"bn", intName(c.bn)},
            {"bk", intName(c.bk)},       {"wm", intName(c.wm)},
            {"wn", intName(c.wn)},       {"swizzle", boolName(c.swizzle)},
            {"ldmatrix", boolName(!c.disableLdmatrix)}};
}

ParamMap
layernormParams(const ops::LayernormConfig &c)
{
    return {{"vectorized", boolName(c.vectorized)}};
}

ParamMap
mlpParams(const ops::FusedMlpConfig &c)
{
    return {{"m_tile", intName(c.mTile)},
            {"swizzle", boolName(c.swizzle)}};
}

ParamMap
fmhaParams(const ops::FmhaConfig &c)
{
    return {{"swizzle", boolName(c.swizzle)},
            {"two_stage_layouts", boolName(!c.handwrittenLayouts)}};
}

TunableSpace
tcGemmSpace(const GpuArch &arch, const ProblemShape &shape)
{
    const int64_t m = shape.m > 0 ? shape.m : 128;
    const int64_t n = shape.n > 0 ? shape.n : 128;
    const int64_t k = shape.k > 0 ? shape.k : 64;
    ops::TcGemmConfig seed;
    try {
        seed = baselines::heuristicGemmConfig(arch, m, n, k);
    } catch (const Error &) {
        // Shapes outside the library heuristics: tune from the struct
        // defaults instead.
        seed.m = m;
        seed.n = n;
        seed.k = k;
    }
    TunableSpace space;
    space.op = "tc-gemm";
    space.shape = shapeOf(seed);
    for (const ops::TcGemmConfig &c :
         ops::tcGemmTuneSpace(arch, seed)) {
        Candidate cand;
        cand.params = tcGemmParams(c);
        cand.isSeed = space.candidates.empty();
        cand.build = [c, &arch]() { return ops::buildTcGemm(arch, c); };
        cand.allocate = [c](Device &dev) {
            vallocFp16(dev, c.aName, c.m * c.k);
            vallocFp16(dev, c.bName, c.k * c.n);
            vallocFp16(dev, c.cName, c.m * c.n);
            vallocFp16(dev, c.biasName, c.n);
        };
        space.candidates.push_back(std::move(cand));
    }
    return space;
}

TunableSpace
layernormSpace(const GpuArch &arch, const ProblemShape &shape)
{
    ops::LayernormConfig seed;
    if (shape.m > 0)
        seed.rows = shape.m;
    if (shape.n > 0)
        seed.cols = shape.n;
    TunableSpace space;
    space.op = "layernorm";
    space.shape = shapeOf(seed);
    for (const ops::LayernormConfig &c :
         ops::layernormTuneSpace(arch, seed)) {
        Candidate cand;
        cand.params = layernormParams(c);
        cand.isSeed = space.candidates.empty();
        cand.build = [c, &arch]() {
            return ops::buildLayernormFused(arch, c);
        };
        cand.allocate = [c](Device &dev) {
            vallocFp16(dev, c.inName, c.rows * c.cols);
            vallocFp16(dev, c.gammaName, c.cols);
            vallocFp16(dev, c.betaName, c.cols);
            vallocFp16(dev, c.outName, c.rows * c.cols);
        };
        space.candidates.push_back(std::move(cand));
    }
    return space;
}

TunableSpace
mlpSpace(const GpuArch &arch, const ProblemShape &shape)
{
    ops::FusedMlpConfig seed;
    if (shape.m > 0)
        seed.m = shape.m;
    if (shape.layers > 0)
        seed.layers = shape.layers;
    TunableSpace space;
    space.op = "mlp";
    space.shape = shapeOf(seed);
    for (const ops::FusedMlpConfig &c : ops::mlpTuneSpace(arch, seed)) {
        Candidate cand;
        cand.params = mlpParams(c);
        cand.isSeed = space.candidates.empty();
        cand.build = [c, &arch]() { return ops::buildFusedMlp(arch, c); };
        cand.allocate = [c](Device &dev) {
            vallocFp16(dev, c.xName, c.m * c.width);
            vallocFp16(dev, c.wName, c.layers * c.width * c.width);
            vallocFp16(dev, c.biasName, c.layers * c.width);
            vallocFp16(dev, c.outName, c.m * c.width);
        };
        space.candidates.push_back(std::move(cand));
    }
    return space;
}

TunableSpace
fmhaSpace(const GpuArch &arch, const ProblemShape &shape)
{
    ops::FmhaConfig seed;
    // Tuning-friendly defaults (the full BERT shape times identically
    // per block); --m overrides the batch, --n the sequence length.
    seed.batch = shape.m > 0 ? shape.m : 2;
    seed.heads = 2;
    if (shape.n > 0)
        seed.seq = shape.n;
    TunableSpace space;
    space.op = "fmha";
    space.shape = shapeOf(seed);
    for (const ops::FmhaConfig &c : ops::fmhaTuneSpace(arch, seed)) {
        Candidate cand;
        cand.params = fmhaParams(c);
        cand.isSeed = space.candidates.empty();
        cand.build = [c, &arch]() {
            return ops::buildFusedFmha(arch, c);
        };
        cand.allocate = [c](Device &dev) {
            const int64_t elems =
                c.batch * c.heads * c.seq * c.headDim;
            vallocFp16(dev, c.qName, elems);
            vallocFp16(dev, c.kName, elems);
            vallocFp16(dev, c.vName, elems);
            vallocFp16(dev, c.oName, elems);
        };
        space.candidates.push_back(std::move(cand));
    }
    return space;
}

} // namespace

std::vector<std::string>
tunableOps()
{
    return {"tc-gemm", "layernorm", "mlp", "fmha"};
}

TunableSpace
buildTunableSpace(const std::string &op, const GpuArch &arch,
                  const ProblemShape &shape)
{
    TunableSpace space;
    if (op == "tc-gemm") {
        space = tcGemmSpace(arch, shape);
    } else if (op == "layernorm") {
        space = layernormSpace(arch, shape);
    } else if (op == "mlp") {
        space = mlpSpace(arch, shape);
    } else if (op == "fmha") {
        space = fmhaSpace(arch, shape);
    } else {
        diag::Diagnostic d;
        d.code = "tune-unknown-op";
        d.message = "no tunable space registered for op '" + op
            + "' (known: tc-gemm layernorm mlp fmha)";
        diag::report(std::move(d));
        return space;
    }
    space.archName = arch.name;
    // Digest the space definition: op + shape + every candidate's
    // parameter assignment, in enumeration order.
    std::string canon = space.op + "|" + space.shape.dump();
    for (const Candidate &c : space.candidates)
        canon += "|" + paramsToJson(c.params).dump();
    space.spaceHash = fnv1aHex(canon);
    return space;
}

int
paramDistance(const ParamMap &a, const ParamMap &b)
{
    if (a.size() != b.size())
        return static_cast<int>(std::max(a.size(), b.size()));
    int d = 0;
    for (size_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            ++d;
    return d;
}

json::Value
paramsToJson(const ParamMap &params)
{
    json::Value obj = json::Value::object();
    for (const auto &kv : params)
        obj[kv.first] = kv.second;
    return obj;
}

ParamMap
paramsFromJson(const json::Value &obj)
{
    ParamMap params;
    for (const auto &kv : obj.fields())
        params.emplace_back(kv.first, kv.second.asString());
    return params;
}

std::string
fnv1aHex(const std::string &text)
{
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

namespace
{

const std::string *
findParam(const ParamMap &params, const char *key)
{
    for (const auto &kv : params)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

void
applyInt(const ParamMap &params, const char *key, int64_t &field)
{
    if (const std::string *v = findParam(params, key))
        field = std::stoll(*v);
}

void
applyBool(const ParamMap &params, const char *key, bool &field)
{
    if (const std::string *v = findParam(params, key))
        field = *v == "on";
}

} // namespace

void
applyParams(const ParamMap &params, ops::TcGemmConfig &cfg)
{
    applyInt(params, "bm", cfg.bm);
    applyInt(params, "bn", cfg.bn);
    applyInt(params, "bk", cfg.bk);
    applyInt(params, "wm", cfg.wm);
    applyInt(params, "wn", cfg.wn);
    applyBool(params, "swizzle", cfg.swizzle);
    if (const std::string *v = findParam(params, "ldmatrix"))
        cfg.disableLdmatrix = *v != "on";
}

void
applyParams(const ParamMap &params, ops::LayernormConfig &cfg)
{
    applyBool(params, "vectorized", cfg.vectorized);
}

void
applyParams(const ParamMap &params, ops::FusedMlpConfig &cfg)
{
    applyInt(params, "m_tile", cfg.mTile);
    applyBool(params, "swizzle", cfg.swizzle);
}

void
applyParams(const ParamMap &params, ops::FmhaConfig &cfg)
{
    applyBool(params, "swizzle", cfg.swizzle);
    if (const std::string *v = findParam(params, "two_stage_layouts"))
        cfg.handwrittenLayouts = *v != "on";
}

json::Value
shapeOf(const ops::TcGemmConfig &cfg)
{
    json::Value shape = json::Value::object();
    shape["m"] = cfg.m;
    shape["n"] = cfg.n;
    shape["k"] = cfg.k;
    shape["batch"] = cfg.batch;
    shape["epilogue"] = ops::epilogueName(cfg.epilogue);
    return shape;
}

json::Value
shapeOf(const ops::LayernormConfig &cfg)
{
    json::Value shape = json::Value::object();
    shape["rows"] = cfg.rows;
    shape["cols"] = cfg.cols;
    return shape;
}

json::Value
shapeOf(const ops::FusedMlpConfig &cfg)
{
    json::Value shape = json::Value::object();
    shape["m"] = cfg.m;
    shape["width"] = cfg.width;
    shape["layers"] = cfg.layers;
    return shape;
}

json::Value
shapeOf(const ops::FmhaConfig &cfg)
{
    json::Value shape = json::Value::object();
    shape["batch"] = cfg.batch;
    shape["heads"] = cfg.heads;
    shape["seq"] = cfg.seq;
    shape["head_dim"] = cfg.headDim;
    return shape;
}

} // namespace tune
} // namespace graphene
