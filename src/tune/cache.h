/**
 * @file
 * The persistent tuning cache (schema "graphene.tune.v1"): best-found
 * configs per (op, problem shape, architecture, space hash), written
 * by `graphene-cli tune` and consumed by `bench`/`profile`/`explain`
 * via `--tuned <cache>`.
 *
 * The serialized document is DETERMINISTIC: it carries no timestamp,
 * hostname, or thread count, so two tune runs of the same build with
 * the same seed produce byte-identical caches regardless of the
 * worker-thread count — which CI exploits to gate on reproducibility.
 */

#ifndef GRAPHENE_TUNE_CACHE_H
#define GRAPHENE_TUNE_CACHE_H

#include <string>

#include "tune/tuner.h"
#include "support/schemas.h"

namespace graphene
{
namespace tune
{

class TuningCache
{
  public:
    static constexpr const char *kSchema = schemas::kTune;

    TuningCache() = default;

    /** Parse a cache document; raises diag "tune-cache-schema" when
     *  the schema tag is missing or wrong. */
    static TuningCache fromJson(const json::Value &doc);

    /** Load from @p path; a missing file yields an empty cache. */
    static TuningCache load(const std::string &path);

    /** Deterministic document (see file comment). */
    json::Value toJson() const;

    /** Write to @p path, creating parent directories. */
    void save(const std::string &path) const;

    /** Insert @p result, replacing any entry with the same
     *  (op, arch, shape) key. */
    void put(const TuneResult &result);

    /**
     * Entry for (op, arch, shape), or nullptr.  When the entry's
     * space_hash differs from @p spaceHash (and @p spaceHash is
     * non-empty) the entry is stale and nullptr is returned.
     */
    const json::Value *find(const std::string &op,
                            const std::string &archName,
                            const json::Value &shape,
                            const std::string &spaceHash = "") const;

    /** Best-found params of the matching entry, or an empty map. */
    ParamMap bestParams(const std::string &op,
                        const std::string &archName,
                        const json::Value &shape) const;

    size_t size() const { return entries_.size(); }

  private:
    std::vector<json::Value> entries_;
};

/**
 * Convenience for `--tuned` consumers: look up the cache entry
 * matching @p cfg's op/shape on @p arch and overwrite its tunable
 * knobs with the best-found params.  Returns true when an entry was
 * found and applied.
 */
bool applyTuned(const TuningCache &cache, const GpuArch &arch,
                ops::TcGemmConfig &cfg);
bool applyTuned(const TuningCache &cache, const GpuArch &arch,
                ops::LayernormConfig &cfg);
bool applyTuned(const TuningCache &cache, const GpuArch &arch,
                ops::FusedMlpConfig &cfg);
bool applyTuned(const TuningCache &cache, const GpuArch &arch,
                ops::FmhaConfig &cfg);

} // namespace tune
} // namespace graphene

#endif // GRAPHENE_TUNE_CACHE_H
