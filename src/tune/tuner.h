/**
 * @file
 * The simulator-driven config search: staged pruning over a
 * TunableSpace, evaluated with the timing simulator.
 *
 * Stages:
 *  1. static filter — every candidate's kernel is built and checked
 *     with the IR verifier plus the static memory-access lint
 *     (inspect/inspect.h, predicted bank conflicts / uncoalesced
 *     moves).  Lint-dirty candidates are pruned before a single
 *     simulated cycle is spent — except the seed/default config,
 *     which is never discarded.
 *  2. coarse grid — the surviving candidates (deterministically
 *     subsampled when a budget is set) are timed with the simulator,
 *     in parallel on a host thread pool.
 *  3. neighborhood refinement — the parameter-space neighbors
 *     (distance 1) of the best grid points are timed, for up to two
 *     rounds or until the budget is exhausted.
 *
 * Everything is deterministic: candidate order is enumeration order,
 * subsampling is an even stride, results are keyed by candidate index,
 * and ties break toward the lower index — so two runs with the same
 * seed produce identical results regardless of the worker-thread
 * count.
 */

#ifndef GRAPHENE_TUNE_TUNER_H
#define GRAPHENE_TUNE_TUNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "tune/space.h"

namespace graphene
{
namespace tune
{

struct TuneOptions
{
    /** Maximum number of timed simulations (0 = no cap). */
    int budget = 64;
    /** Worker threads for parallel evaluation (0 = auto).  Does not
     *  affect results. */
    int threads = 0;
    /** Seed recorded in the result (reserved for randomized search
     *  strategies; the staged search itself is deterministic). */
    uint64_t seed = 0;
    /** Prune lint-dirty candidates before timing (stage 1). */
    bool lintFilter = true;
    /** Number of top grid points whose neighborhoods are refined. */
    int refineTop = 3;
};

/** Outcome for one evaluated candidate. */
struct CandidateResult
{
    int index = -1;
    ParamMap params;
    bool isSeed = false;
    /** Simulated kernel time; the search objective. */
    double simUs = 0;
    std::string boundBy;
    /** "grid" or "refine" (the stage that paid for the timing). */
    std::string stage;
    /** No verifier errors and no lint findings. */
    bool lintClean = true;
    int lintFindings = 0;
};

struct TuneResult
{
    std::string op;
    std::string archName;
    json::Value shape;
    std::string spaceHash;
    uint64_t seed = 0;
    int budget = 0;
    /** Size of the enumerated space. */
    int64_t spaceSize = 0;
    /** Candidates pruned by the static filter (stage 1). */
    int64_t lintRejected = 0;
    /** Candidates that failed to build or verify. */
    int64_t invalid = 0;
    /** Timed simulations actually paid for. */
    int64_t evaluated = 0;
    /** The seed/default config's outcome (always evaluated). */
    CandidateResult defaultResult;
    /** The best-found config (simUs <= defaultResult.simUs). */
    CandidateResult best;
    /** Every evaluated candidate, ordered by candidate index. */
    std::vector<CandidateResult> all;
};

/** Run the staged search over @p space on @p arch. */
TuneResult runTune(const TunableSpace &space, const GpuArch &arch,
                   const TuneOptions &opts = {});

} // namespace tune
} // namespace graphene

#endif // GRAPHENE_TUNE_TUNER_H
