#include "tune/cache.h"

#include <fstream>

#include "support/diag.h"
#include "support/fs.h"

#ifndef GRAPHENE_GIT_SHA
#define GRAPHENE_GIT_SHA "unknown"
#endif

namespace graphene
{
namespace tune
{

namespace
{

json::Value
resultToJson(const CandidateResult &r)
{
    json::Value v = json::Value::object();
    v["params"] = paramsToJson(r.params);
    v["sim_us"] = r.simUs;
    v["bound_by"] = r.boundBy;
    v["stage"] = r.stage;
    v["lint_clean"] = r.lintClean;
    return v;
}

} // namespace

TuningCache
TuningCache::fromJson(const json::Value &doc)
{
    if (!doc.isObject() || !doc.contains("schema")
        || doc.at("schema").asString() != kSchema) {
        diag::Diagnostic d;
        d.code = "tune-cache-schema";
        d.message = std::string("not a ") + kSchema + " document";
        diag::report(std::move(d));
        return TuningCache();
    }
    TuningCache cache;
    const json::Value &entries = doc.at("entries");
    for (size_t i = 0; i < entries.size(); ++i)
        cache.entries_.push_back(entries.at(i));
    return cache;
}

TuningCache
TuningCache::load(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        return TuningCache();
    std::string text((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    return fromJson(json::Value::parse(text));
}

json::Value
TuningCache::toJson() const
{
    json::Value doc = json::Value::object();
    doc["schema"] = kSchema;
    // Deliberately only the (build-stable) git SHA: no timestamp,
    // hostname, or thread count, so cache bytes are reproducible.
    doc["git_sha"] = GRAPHENE_GIT_SHA;
    doc["entries"] = json::Value::array();
    for (const json::Value &e : entries_)
        doc["entries"].push(e);
    return doc;
}

void
TuningCache::save(const std::string &path) const
{
    std::ofstream f = openOutputFile(path);
    f << toJson().dump(2);
    f << "\n";
}

void
TuningCache::put(const TuneResult &result)
{
    json::Value e = json::Value::object();
    e["op"] = result.op;
    e["arch"] = result.archName;
    e["shape"] = result.shape;
    e["space_hash"] = result.spaceHash;
    e["space_size"] = result.spaceSize;
    e["lint_rejected"] = result.lintRejected;
    e["invalid"] = result.invalid;
    e["evaluated"] = result.evaluated;
    e["budget"] = result.budget;
    e["seed"] = static_cast<int64_t>(result.seed);
    e["default"] = resultToJson(result.defaultResult);
    e["best"] = resultToJson(result.best);
    e["speedup"] = result.best.simUs > 0 && result.defaultResult.simUs > 0
        ? result.defaultResult.simUs / result.best.simUs
        : 0.0;
    for (json::Value &old : entries_) {
        if (old.at("op").asString() == result.op
            && old.at("arch").asString() == result.archName
            && old.at("shape").dump() == result.shape.dump()) {
            old = std::move(e);
            return;
        }
    }
    entries_.push_back(std::move(e));
}

const json::Value *
TuningCache::find(const std::string &op, const std::string &archName,
                  const json::Value &shape,
                  const std::string &spaceHash) const
{
    const std::string shapeKey = shape.dump();
    for (const json::Value &e : entries_) {
        if (e.at("op").asString() != op
            || e.at("arch").asString() != archName
            || e.at("shape").dump() != shapeKey)
            continue;
        if (!spaceHash.empty()
            && e.at("space_hash").asString() != spaceHash)
            return nullptr; // stale: the space definition changed
        return &e;
    }
    return nullptr;
}

ParamMap
TuningCache::bestParams(const std::string &op,
                        const std::string &archName,
                        const json::Value &shape) const
{
    const json::Value *e = find(op, archName, shape);
    if (e == nullptr)
        return ParamMap();
    return paramsFromJson(e->at("best").at("params"));
}

namespace
{

template <typename Config>
bool
applyTunedImpl(const TuningCache &cache, const GpuArch &arch,
               const std::string &op, Config &cfg)
{
    const ParamMap params =
        cache.bestParams(op, arch.name, shapeOf(cfg));
    if (params.empty())
        return false;
    applyParams(params, cfg);
    return true;
}

} // namespace

bool
applyTuned(const TuningCache &cache, const GpuArch &arch,
           ops::TcGemmConfig &cfg)
{
    return applyTunedImpl(cache, arch, "tc-gemm", cfg);
}

bool
applyTuned(const TuningCache &cache, const GpuArch &arch,
           ops::LayernormConfig &cfg)
{
    return applyTunedImpl(cache, arch, "layernorm", cfg);
}

bool
applyTuned(const TuningCache &cache, const GpuArch &arch,
           ops::FusedMlpConfig &cfg)
{
    return applyTunedImpl(cache, arch, "mlp", cfg);
}

bool
applyTuned(const TuningCache &cache, const GpuArch &arch,
           ops::FmhaConfig &cfg)
{
    return applyTunedImpl(cache, arch, "fmha", cfg);
}

} // namespace tune
} // namespace graphene
