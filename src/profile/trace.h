/**
 * @file
 * Chrome-trace export of a profiled (timing-mode) execution.
 *
 * The emitted JSON loads in chrome://tracing or Perfetto: the profiled
 * block's execution is rendered as nested duration events mirroring
 * the spec decomposition, each leaf spec additionally appears on the
 * lane of the pipe that bounds it, and counter tracks plot the
 * cumulative shared-memory wavefront and DRAM-sector pressure over
 * (simulated) time.
 *
 * Timestamps are simulated microseconds: each leaf's span is its
 * pipe-limited cycles at the architecture's clock, laid out in
 * program order (the warp-synchronous model executes warps in
 * lockstep, so one timeline represents every warp of the block; the
 * per-pipe lanes show where each span would issue).  Costs
 * extrapolated from uniform-loop prefixes are included in the spans
 * and marked with args.extrapolated = true.
 */

#ifndef GRAPHENE_PROFILE_TRACE_H
#define GRAPHENE_PROFILE_TRACE_H

#include "profile/profile.h"

namespace graphene
{
namespace profile
{

/** Chrome-trace document ({"traceEvents": [...], ...}) for a profiled
 *  launch; serialize with .dump(). */
json::Value profileToChromeTrace(const Kernel &kernel, const GpuArch &arch,
                                 const sim::KernelProfile &prof);

} // namespace profile
} // namespace graphene

#endif // GRAPHENE_PROFILE_TRACE_H
