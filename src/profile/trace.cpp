#include "profile/trace.h"

#include <algorithm>
#include <cmath>
#include "support/schemas.h"

namespace graphene
{
namespace profile
{

namespace
{

/** Simulated microseconds for a cycle count. */
double
cyclesToUs(double cycles, const GpuArch &arch)
{
    return cycles / (arch.clockGhz * 1e3);
}

struct TraceBuilder
{
    const GpuArch &arch;
    json::Value events = json::Value::array();
    int pid = 1;

    // Lane (tid) assignment: 0 = decomposition hierarchy, then one
    // lane per pipe in first-seen order.
    std::vector<std::string> pipeLanes;

    int
    pipeLane(const std::string &pipe)
    {
        for (size_t i = 0; i < pipeLanes.size(); ++i)
            if (pipeLanes[i] == pipe)
                return static_cast<int>(i) + 1;
        pipeLanes.push_back(pipe);
        return static_cast<int>(pipeLanes.size());
    }

    void
    meta(int tid, const std::string &name)
    {
        json::Value e = json::Value::object();
        e["ph"] = "M";
        e["name"] = "thread_name";
        e["pid"] = pid;
        e["tid"] = tid;
        json::Value args = json::Value::object();
        args["name"] = name;
        e["args"] = std::move(args);
        events.push(std::move(e));
    }

    void
    duration(int tid, const std::string &name, double tsUs, double durUs,
             const AttributionNode &n)
    {
        json::Value e = json::Value::object();
        e["ph"] = "X";
        e["name"] = name;
        e["cat"] = n.kind;
        e["pid"] = pid;
        e["tid"] = tid;
        e["ts"] = tsUs;
        e["dur"] = durUs;
        json::Value args = json::Value::object();
        args["stmt"] = n.stmtId;
        args["bound_by"] = n.boundBy;
        args["pct_of_block"] = n.pctOfBlock;
        if (n.extrapolated)
            args["extrapolated"] = true;
        if (n.maxSmemConflict > 1.01)
            args["smem_conflict"] = n.maxSmemConflict;
        e["args"] = std::move(args);
        events.push(std::move(e));
    }

    void
    counter(const std::string &name, double tsUs, const std::string &key,
            double value)
    {
        json::Value e = json::Value::object();
        e["ph"] = "C";
        e["name"] = name;
        e["pid"] = pid;
        e["tid"] = 0;
        e["ts"] = tsUs;
        json::Value args = json::Value::object();
        args[key] = value;
        e["args"] = std::move(args);
        events.push(std::move(e));
    }

    /** Laid-out span of a subtree: leaf cost, or the recursive sum of
     *  child spans (a node's own cycle count can undercount nested
     *  work, so the recursive sum is what keeps nesting exact). */
    double
    spanOf(const AttributionNode &n) const
    {
        if (n.children.empty())
            return cyclesToUs(n.cycles, arch);
        double sum = 0;
        for (const AttributionNode &c : n.children)
            sum += spanOf(c);
        return sum;
    }

    /**
     * Lay the subtree out in program order starting at @p tsUs.  A
     * parent's span is the sum of its children's spans (self cost for
     * structured nodes is barrier overhead only, charged to sync
     * leaves), so nesting is exact.  Returns the span in µs.
     */
    double
    emit(const AttributionNode &n, double tsUs, double cumSmem,
         double cumSectors)
    {
        const double durUs = spanOf(n);
        duration(0, n.label, tsUs, durUs, n);
        if (n.children.empty()) {
            if (n.kind == "spec" || n.kind == "sync")
                duration(pipeLane(n.boundBy), n.label, tsUs, durUs, n);
            counter("smem wavefronts", tsUs, "cumulative",
                    cumSmem + n.total.smemWavefronts);
            counter("dram sectors", tsUs, "cumulative",
                    cumSectors + n.total.globalSectors);
        } else {
            double cursor = tsUs;
            double smem = cumSmem;
            double sectors = cumSectors;
            for (const AttributionNode &c : n.children) {
                cursor += emit(c, cursor, smem, sectors);
                smem += c.total.smemWavefronts;
                sectors += c.total.globalSectors;
            }
        }
        return durUs;
    }
};

} // namespace

json::Value
profileToChromeTrace(const Kernel &kernel, const GpuArch &arch,
                     const sim::KernelProfile &prof)
{
    const AttributionNode tree = buildAttributionTree(kernel, arch, prof);

    TraceBuilder tb{arch};

    json::Value pm = json::Value::object();
    pm["ph"] = "M";
    pm["name"] = "process_name";
    pm["pid"] = tb.pid;
    pm["tid"] = 0;
    json::Value pmArgs = json::Value::object();
    pmArgs["name"] =
        "graphene " + kernel.name() + " on " + arch.name + " (block 0)";
    pm["args"] = std::move(pmArgs);
    tb.events.push(std::move(pm));
    tb.meta(0, "decomposition");

    tb.emit(tree, 0.0, 0.0, 0.0);

    // Pipe-lane names are discovered while emitting.
    for (size_t i = 0; i < tb.pipeLanes.size(); ++i)
        tb.meta(static_cast<int>(i) + 1, "pipe: " + tb.pipeLanes[i]);

    json::Value doc = json::Value::object();
    doc["traceEvents"] = std::move(tb.events);
    doc["displayTimeUnit"] = "ns";
    json::Value other = json::Value::object();
    other["schema"] = schemas::kTrace;
    other["kernel"] = kernel.name();
    other["arch"] = arch.name;
    other["clock_ghz"] = arch.clockGhz;
    other["block_cycles"] = prof.timing.blockCycles;
    other["time_us"] = prof.timing.timeUs;
    other["bound_by"] = prof.timing.boundBy;
    doc["otherData"] = std::move(other);
    return doc;
}

} // namespace profile
} // namespace graphene
