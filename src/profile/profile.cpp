#include "profile/profile.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <set>
#include <sstream>

#include "ir/printer.h"
#include "support/check.h"
#include "support/schemas.h"

namespace graphene
{
namespace profile
{

namespace
{

struct TreeBuilder
{
    const sim::KernelProfile &prof;
    const GpuArch &arch;
    std::set<const Stmt *> visited;

    void
    buildInto(AttributionNode &parent, const std::vector<StmtPtr> &stmts)
    {
        for (const StmtPtr &s : stmts) {
            if (s->kind == StmtKind::Comment)
                continue;
            if (!visited.insert(s.get()).second)
                continue; // shared subtree: attributed at first site
            AttributionNode node;
            node.stmtId = s->stmtId;
            node.label = stmtSummary(*s);
            node.kind = stmtKindTag(*s);
            node.provenance = s->provenancePath();
            if (s->kind == StmtKind::SpecCall && s->spec) {
                const std::string p = s->spec->provenancePath();
                if (!p.empty())
                    node.provenance = p;
            }
            auto it = prof.byStmt.find(s->stmtId);
            if (it != prof.byStmt.end()) {
                node.self = it->second.stats;
                node.maxSmemConflict = it->second.maxSmemConflict;
                node.visits = it->second.visits;
                node.extrapolated = it->second.extrapolated;
            }
            switch (s->kind) {
              case StmtKind::For:
              case StmtKind::If:
                buildInto(node, s->body);
                buildInto(node, s->elseBody);
                break;
              case StmtKind::SpecCall:
                if (!s->spec->isLeaf())
                    buildInto(node, s->spec->body());
                break;
              default:
                break;
            }
            node.total = node.self;
            for (const AttributionNode &c : node.children) {
                node.total += c.total;
                node.maxSmemConflict =
                    std::max(node.maxSmemConflict, c.maxSmemConflict);
                node.extrapolated = node.extrapolated || c.extrapolated;
            }
            node.cycles = sim::pipeCycles(node.total, arch, &node.boundBy);
            if (node.cycles == 0)
                node.boundBy = "-";
            parent.children.push_back(std::move(node));
        }
    }

    void
    finalizePct(AttributionNode &node, double rootCycles)
    {
        node.pctOfBlock =
            rootCycles > 0 ? 100.0 * node.cycles / rootCycles : 0.0;
        for (AttributionNode &c : node.children)
            finalizePct(c, rootCycles);
    }
};

json::Value
costStatsToJson(const sim::CostStats &s)
{
    json::Value o = json::Value::object();
    o["tensor_flops"] = s.tensorFlops;
    o["fp32_flops"] = s.fp32Flops;
    o["fp16_flops"] = s.fp16Flops;
    o["sfu_ops"] = s.sfuOps;
    o["issue_slots"] = s.issueSlots;
    o["smem_wavefronts"] = s.smemWavefronts;
    o["smem_accesses"] = s.smemAccesses;
    o["smem_conflict_avg"] = s.avgSmemConflict();
    o["global_sectors"] = s.globalSectors;
    o["global_accesses"] = s.globalAccesses;
    o["global_load_bytes"] = s.globalLoadBytes;
    o["global_store_bytes"] = s.globalStoreBytes;
    o["coalescing_pct"] = s.coalescingPct();
    o["sync_count"] = s.syncCount;
    return o;
}

json::Value
nodeToJson(const AttributionNode &n)
{
    json::Value o = json::Value::object();
    o["stmt"] = n.stmtId;
    o["kind"] = n.kind;
    o["label"] = n.label;
    o["provenance"] = n.provenance;
    o["pct_of_block"] = n.pctOfBlock;
    o["cycles"] = n.cycles;
    o["bound_by"] = n.boundBy;
    o["visits"] = n.visits;
    o["extrapolated"] = n.extrapolated;
    o["max_smem_conflict"] = n.maxSmemConflict;
    o["total"] = costStatsToJson(n.total);
    if (!n.children.empty()) {
        json::Value kids = json::Value::array();
        for (const AttributionNode &c : n.children)
            kids.push(nodeToJson(c));
        o["children"] = std::move(kids);
    }
    return o;
}

/** Leaf nodes (no children) of the attribution tree, hottest first. */
std::vector<const AttributionNode *>
hotLeaves(const AttributionNode &root)
{
    std::vector<const AttributionNode *> leaves;
    std::function<void(const AttributionNode &)> walk =
        [&](const AttributionNode &n) {
            if (n.children.empty() && n.kind == "spec")
                leaves.push_back(&n);
            for (const AttributionNode &c : n.children)
                walk(c);
        };
    walk(root);
    std::sort(leaves.begin(), leaves.end(),
              [](const AttributionNode *a, const AttributionNode *b) {
                  if (a->cycles != b->cycles)
                      return a->cycles > b->cycles;
                  return a->stmtId < b->stmtId; // deterministic ties
              });
    return leaves;
}

std::vector<const AttributionNode *>
conflictedSites(const AttributionNode &root)
{
    std::vector<const AttributionNode *> sites;
    std::function<void(const AttributionNode &)> walk =
        [&](const AttributionNode &n) {
            if (n.children.empty() && n.maxSmemConflict > 1.01)
                sites.push_back(&n);
            for (const AttributionNode &c : n.children)
                walk(c);
        };
    walk(root);
    std::sort(sites.begin(), sites.end(),
              [](const AttributionNode *a, const AttributionNode *b) {
                  if (a->maxSmemConflict != b->maxSmemConflict)
                      return a->maxSmemConflict > b->maxSmemConflict;
                  return a->stmtId < b->stmtId;
              });
    return sites;
}

void
renderNode(std::ostringstream &out, const AttributionNode &n, int depth)
{
    char head[64];
    std::snprintf(head, sizeof head, "%6.1f%%  %-6s %c ", n.pctOfBlock,
                  n.boundBy.c_str(), n.extrapolated ? '*' : ' ');
    out << head << std::string(static_cast<size_t>(depth) * 2, ' ')
        << n.label;
    if (n.maxSmemConflict > 1.01 && n.children.empty()) {
        char flag[48];
        std::snprintf(flag, sizeof flag, "  !bank-conflict %.1fx",
                      n.maxSmemConflict);
        out << flag;
    }
    out << "\n";
    for (const AttributionNode &c : n.children)
        renderNode(out, c, depth + 1);
}

} // namespace

AttributionNode
buildAttributionTree(const Kernel &kernel, const GpuArch &arch,
                     const sim::KernelProfile &prof)
{
    GRAPHENE_CHECK(!prof.byStmt.empty() || kernel.countLeafSpecs() == 0)
        << "profile has no per-statement attribution; run "
        << "Executor::profile() or runAndProfile() first";
    numberStmts(kernel.body()); // same numbering the executor used
    AttributionNode root;
    root.stmtId = -1;
    root.kind = "kernel";
    root.label = "kernel " + kernel.name();
    TreeBuilder builder{prof, arch, {}};
    builder.buildInto(root, kernel.body());
    root.total = root.self;
    for (const AttributionNode &c : root.children) {
        root.total += c.total;
        root.maxSmemConflict =
            std::max(root.maxSmemConflict, c.maxSmemConflict);
        root.extrapolated = root.extrapolated || c.extrapolated;
    }
    root.cycles = sim::pipeCycles(root.total, arch, &root.boundBy);
    builder.finalizePct(root, root.cycles);
    return root;
}

json::Value
profileToJson(const Kernel &kernel, const GpuArch &arch,
              const sim::KernelProfile &prof)
{
    const AttributionNode tree = buildAttributionTree(kernel, arch, prof);
    json::Value doc = json::Value::object();
    doc["schema"] = schemas::kProfile;

    json::Value k = json::Value::object();
    k["name"] = kernel.name();
    k["arch"] = arch.name;
    k["grid"] = kernel.gridSize();
    k["block"] = kernel.blockSize();
    k["smem_bytes"] = kernel.sharedMemoryBytes();
    k["leaf_specs"] = kernel.countLeafSpecs();
    k["stmts"] = prof.stmtCount;
    k["blocks_executed"] = prof.blocksExecuted;
    doc["kernel"] = std::move(k);

    const sim::KernelTiming &t = prof.timing;
    json::Value tj = json::Value::object();
    tj["time_us"] = t.timeUs;
    tj["bound_by"] = t.boundBy;
    tj["sm_time_us"] = t.smTimeUs;
    tj["dram_time_us"] = t.dramTimeUs;
    tj["launch_overhead_us"] = t.launchOverheadUs;
    tj["block_cycles"] = t.blockCycles;
    tj["waves"] = t.waves;
    tj["blocks_per_sm"] = t.blocksPerSm;
    json::Value pipes = json::Value::object();
    pipes["tensor"] = t.tensorPipePct;
    pipes["fp32"] = t.fp32PipePct;
    pipes["dram"] = t.dramPct;
    pipes["smem"] = t.smemPct;
    tj["pipes_pct"] = std::move(pipes);
    doc["timing"] = std::move(tj);

    doc["per_block"] = costStatsToJson(prof.perBlock);
    doc["attribution"] = nodeToJson(tree);
    return doc;
}

std::string
renderReport(const Kernel &kernel, const GpuArch &arch,
             const sim::KernelProfile &prof, int topN)
{
    const AttributionNode tree = buildAttributionTree(kernel, arch, prof);
    const sim::KernelTiming &t = prof.timing;
    std::ostringstream out;
    char buf[192];

    out << "kernel   " << kernel.name() << " on " << arch.name << "\n";
    std::snprintf(buf, sizeof buf, "launch   grid=%lld block=%lld "
                  "smem=%lldB\n",
                  (long long)kernel.gridSize(),
                  (long long)kernel.blockSize(),
                  (long long)kernel.sharedMemoryBytes());
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "time     %.2f us  (%s-bound, %lld waves, "
                  "%lld blocks/SM)\n",
                  t.timeUs, t.boundBy.c_str(), (long long)t.waves,
                  (long long)t.blocksPerSm);
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "pipes    tensor %.1f%%  fp32 %.1f%%  dram %.1f%%  "
                  "smem %.1f%%\n",
                  t.tensorPipePct, t.fp32PipePct, t.dramPct, t.smemPct);
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "memory   smem conflict avg %.2fx  |  global "
                  "coalescing %.1f%%\n",
                  prof.perBlock.avgSmemConflict(),
                  prof.perBlock.coalescingPct());
    out << buf;

    out << "\nper-spec attribution (block 0; % of block pipe-cycles; "
           "* = extrapolated):\n";
    renderNode(out, tree, 0);

    const auto leaves = hotLeaves(tree);
    out << "\nhot specs (top " << std::min<size_t>(leaves.size(),
                                                   (size_t)topN)
        << " by pipe-cycles):\n";
    for (size_t i = 0; i < leaves.size() && i < (size_t)topN; ++i) {
        std::snprintf(buf, sizeof buf, "  %zu. %5.1f%%  [%s]  ", i + 1,
                      leaves[i]->pctOfBlock, leaves[i]->boundBy.c_str());
        out << buf << leaves[i]->label << "  (stmt "
            << leaves[i]->stmtId << ")\n";
        if (!leaves[i]->provenance.empty())
            out << "            at " << leaves[i]->provenance << "\n";
    }

    const auto conflicts = conflictedSites(tree);
    if (conflicts.empty()) {
        out << "smem     no bank-conflicted access sites\n";
    } else {
        std::snprintf(buf, sizeof buf,
                      "smem     %zu bank-conflicted site%s (worst "
                      "%.1fx):\n",
                      conflicts.size(),
                      conflicts.size() == 1 ? "" : "s",
                      conflicts.front()->maxSmemConflict);
        out << buf;
        for (size_t i = 0; i < conflicts.size() && i < 4; ++i) {
            std::snprintf(buf, sizeof buf, "  !%.1fx  ",
                          conflicts[i]->maxSmemConflict);
            out << buf << conflicts[i]->label << "  (stmt "
                << conflicts[i]->stmtId << ")\n";
        }
    }

    // The paper's "X% of peak" verdict.
    double peakPct = 0;
    std::string peakPipe = t.boundBy;
    if (t.boundBy == "tensor")
        peakPct = t.tensorPipePct;
    else if (t.boundBy == "fp32")
        peakPct = t.fp32PipePct;
    else if (t.boundBy == "dram")
        peakPct = t.dramPct;
    else if (t.boundBy == "smem")
        peakPct = t.smemPct;
    if (peakPct > 0) {
        std::snprintf(buf, sizeof buf,
                      "verdict  %s-bound at %.0f%% of peak",
                      peakPipe.c_str(), peakPct);
    } else {
        std::snprintf(buf, sizeof buf, "verdict  %s-bound",
                      peakPipe.c_str());
    }
    out << buf;
    if (!leaves.empty()) {
        std::snprintf(buf, sizeof buf, "; hot spec %.1f%% ",
                      leaves.front()->pctOfBlock);
        out << buf << leaves.front()->label;
    }
    out << "\n";
    return out.str();
}

} // namespace profile
} // namespace graphene
