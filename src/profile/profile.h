/**
 * @file
 * Observability for the simulator: hierarchical per-spec cost
 * attribution, machine-readable profile reports, and human-readable
 * "where do the cycles go" summaries.
 *
 * The executor keys every cost increment by the enclosing statement's
 * stable id (ir/stmt.h numbering).  This module folds that flat
 * attribution back onto the spec decomposition, producing a profile
 * tree that mirrors the IR: each node carries the counters of its
 * subtree, its pipe-limited cycles, the share of the block's cycles,
 * and per-site shared-memory conflict / global coalescing quality —
 * the paper's Nsight-style percent-of-peak framing (Figs. 9-15), per
 * decomposition node instead of per kernel.
 */

#ifndef GRAPHENE_PROFILE_PROFILE_H
#define GRAPHENE_PROFILE_PROFILE_H

#include <string>
#include <vector>

#include "sim/executor.h"
#include "support/json.h"

namespace graphene
{
namespace profile
{

/** One node of the cost-attribution tree (mirrors the decomposition). */
struct AttributionNode
{
    int64_t stmtId = -1; // -1 for the kernel root
    /** One-line description (spec header, loop bounds, ...). */
    std::string label;
    /** Decomposition provenance path of the statement ("" unknown). */
    std::string provenance;
    /** "kernel" | "for" | "if" | "sync" | "spec" | "alloc". */
    std::string kind;
    /** Cost attributed directly to this statement (leaves only). */
    sim::CostStats self;
    /** self + every descendant. */
    sim::CostStats total;
    /** Pipe-limited cycles of `total` and the pipe that bounds them. */
    double cycles = 0;
    std::string boundBy;
    /** Share of the root's pipe-limited cycles, in percent. */
    double pctOfBlock = 0;
    /** Worst warp-wide smem conflict degree in this subtree (1=clean). */
    double maxSmemConflict = 1.0;
    /** Dynamic executions simulated (leaves; extrapolated trips not
     *  counted — their cost is folded in and flagged below). */
    int64_t visits = 0;
    /** Part of this cost was extrapolated from a uniform-loop prefix. */
    bool extrapolated = false;
    std::vector<AttributionNode> children;
};

/**
 * Build the attribution tree for @p kernel from a profiled launch.
 * @p kernel must be the same IR that produced @p prof (statement ids
 * are re-derived by the same numbering).  Comment statements are
 * dropped; a shared sub-decomposition appears once, at its first call
 * site, carrying the cost of every site.
 */
AttributionNode buildAttributionTree(const Kernel &kernel,
                                     const GpuArch &arch,
                                     const sim::KernelProfile &prof);

/**
 * Machine-readable profile: kernel metadata, roofline timing numbers,
 * per-block counters, and the attribution tree
 * (schema "graphene.profile.v1").
 */
json::Value profileToJson(const Kernel &kernel, const GpuArch &arch,
                          const sim::KernelProfile &prof);

/**
 * Human-readable report: launch + timing header, the attribution tree
 * with percent-of-block-cycles per node, the top-@p topN hottest leaf
 * specs, bank-conflict flags per site, and a bound-by verdict line.
 */
std::string renderReport(const Kernel &kernel, const GpuArch &arch,
                         const sim::KernelProfile &prof, int topN = 5);

} // namespace profile
} // namespace graphene

#endif // GRAPHENE_PROFILE_PROFILE_H
