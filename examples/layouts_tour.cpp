/**
 * @file
 * A tour of Graphene's tensor shapes, layouts, and tiles — the
 * paper's Figs. 3-6 printed and visualized:
 *
 *   - column/row-major and hierarchical-dimension memory layouts;
 *   - contiguous, interleaved, and hierarchically non-contiguous tiles;
 *   - logical thread groups (the ldmatrix arrangement and Volta
 *     quad-pairs) with their generated index expressions.
 */

#include <cstdio>

#include "ir/tensor.h"
#include "ir/thread_group.h"
#include "layout/algebra.h"

using namespace graphene;

namespace
{

/** Print the physical offset of every logical (i, j). */
void
show(const char *title, const Layout &l, int64_t rows, int64_t cols)
{
    std::printf("%s  %s\n", title, l.str().c_str());
    for (int64_t i = 0; i < rows; ++i) {
        std::printf("   ");
        for (int64_t j = 0; j < cols; ++j)
            std::printf(" %3lld", (long long)l(i, j));
        std::printf("\n");
    }
}

/** Color each element by the tile it belongs to. */
void
showTiles(const char *title, const Layout &inner, const Layout &outer,
          const Layout &base, int64_t rows, int64_t cols)
{
    std::printf("%s\n   outer (tiles) %s\n   inner (tile)  %s\n", title,
                outer.str().c_str(), inner.str().c_str());
    std::vector<int64_t> owner(static_cast<size_t>(base.cosize()), -1);
    for (int64_t o = 0; o < outer.size(); ++o)
        for (int64_t i = 0; i < inner.size(); ++i)
            owner[static_cast<size_t>(outer(o) + inner(i))] = o;
    for (int64_t i = 0; i < rows; ++i) {
        std::printf("   ");
        for (int64_t j = 0; j < cols; ++j)
            std::printf(" T%lld", (long long)owner[static_cast<size_t>(
                                      base(i, j))]);
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    std::printf("==== Fig. 3: memory layouts of a 4x8 tensor ====\n");
    show("(a) column-major", Layout::colMajor(IntTuple{4, 8}), 4, 8);
    show("(b) row-major", Layout::rowMajor(IntTuple{4, 8}), 4, 8);
    show("(c) hierarchical second dimension",
         Layout(IntTuple{4, IntTuple{2, 4}}, IntTuple{2, IntTuple{1, 8}}),
         4, 8);
    std::printf("    (logical 2-D coordinates still work: the "
                "hierarchical coordinate is internal)\n");

    std::printf("\n==== Fig. 4: tiling the column-major 4x8 tensor "
                "====\n");
    auto a = Layout::colMajor(IntTuple{4, 8});
    {
        auto [inner, outer] = tileByDim(a, {Layout::vector(2),
                                            Layout::vector(4)});
        showTiles("(b) contiguous 2x4 tiles", inner, outer, a, 4, 8);
    }
    {
        auto [inner, outer] = tileByDim(
            a, {Layout(IntTuple(2), IntTuple(2)), Layout::vector(4)});
        showTiles("(c) rows interleaved ([2:2] tile size)", inner, outer,
                  a, 4, 8);
    }
    {
        auto [inner, outer] = tileByDim(
            a, {Layout(IntTuple(2), IntTuple(2)),
                Layout(IntTuple{2, 2}, IntTuple{1, 4})});
        showTiles("(d) hierarchical tile size [(2,2):(1,4)]", inner,
                  outer, a, 4, 8);
    }

    std::printf("\n==== Fig. 5: the warp as a logical thread tensor "
                "====\n");
    auto warp = ThreadGroup::threads("#warp", Layout::vector(32), 256);
    auto groups = warp.tile({Layout::vector(8)}).reshape(IntTuple{2, 2});
    std::printf("  %s tiled into 2x2 groups of 8\n",
                warp.typeStr().c_str());
    auto idx = groups.indices(0);
    std::printf("  group coordinates of a thread: (%s, %s)\n",
                idx[0]->str().c_str(), idx[1]->str().c_str());
    std::printf("  index within the group: %s\n",
                groups.indices(1)[0]->str().c_str());

    std::printf("\n==== Fig. 6: Volta quad-pairs ====\n");
    auto qp = warp.tile({Layout(IntTuple{4, 2}, IntTuple{1, 16})});
    std::printf("  quad-pair tile: %s\n", qp.level(1).str().c_str());
    std::printf("  quad-pair 0 holds threads:");
    for (int64_t i = 0; i < 8; ++i)
        std::printf(" %lld", (long long)qp.level(1)(i));
    std::printf("\n");

    std::printf("\n==== Swizzled layouts (Section 3.2) ====\n");
    Swizzle sw(3, 3, 3);
    std::printf("  %s on a [8,64] fp16 tile: column 0's rows land in "
                "banks:",
                sw.str().c_str());
    for (int64_t r = 0; r < 8; ++r)
        std::printf(" %lld", (long long)(sw(r * 64) * 2 / 4 % 32));
    std::printf("\n  (distinct banks -> conflict-free column access)\n");
    return 0;
}
