/**
 * @file
 * Kernel fusion beyond library routines (paper Fig. 11): an MLP whose
 * layers all run in a single kernel because the activations fit in
 * shared memory.  Runs the fused kernel functionally, checks it
 * against the per-layer reference, and compares its simulated time
 * with the cuBLASLt-style per-layer lowering.
 */

#include <cstdio>

#include "baselines/engines.h"
#include "ops/mlp.h"
#include "runtime/reference.h"
#include "support/rng.h"

using namespace graphene;

int
main()
{
    const GpuArch &arch = GpuArch::ampere();
    ops::FusedMlpConfig cfg;
    cfg.m = 256;
    cfg.width = 128;
    cfg.layers = 6;

    // ------------------------------------------------ functional check
    Device dev(arch);
    Rng rng(7);
    std::vector<double> x(cfg.m * 128), w(cfg.layers * 128 * 128),
        b(cfg.layers * 128);
    for (auto &v : x)
        v = rng.uniform(-1, 1);
    for (auto &v : w)
        v = rng.uniform(-0.08, 0.08);
    for (auto &v : b)
        v = rng.uniform(-0.2, 0.2);
    dev.upload("%x", ScalarType::Fp16, x);
    dev.upload("%W", ScalarType::Fp16, w);
    dev.upload("%b", ScalarType::Fp16, b);
    dev.upload("%y", ScalarType::Fp16,
               std::vector<double>(cfg.m * 128, 0));
    dev.launch(ops::buildFusedMlp(arch, cfg), LaunchMode::Functional);

    auto act = dev.download("%x");
    auto wq = dev.download("%W");
    auto bq = dev.download("%b");
    for (int64_t l = 0; l < cfg.layers; ++l) {
        std::vector<double> wl(wq.begin() + l * 128 * 128,
                               wq.begin() + (l + 1) * 128 * 128);
        std::vector<double> bl(bq.begin() + l * 128,
                               bq.begin() + (l + 1) * 128);
        act = ref::relu(ref::biasAdd(
            ref::gemm(act, wl, cfg.m, 128, 128), bl, cfg.m, 128));
    }
    const double err = ref::maxRelDiff(dev.download("%y"), act, 1.0);
    std::printf("fused %lld-layer MLP: max relative error %.4f\n",
                (long long)cfg.layers, err);

    // ------------------------------------------------ timing comparison
    Device timing(arch);
    cfg.m = 2048;
    timing.allocateVirtual("%x", ScalarType::Fp16, cfg.m * 128);
    timing.allocateVirtual("%W", ScalarType::Fp16,
                           cfg.layers * 128 * 128);
    timing.allocateVirtual("%b", ScalarType::Fp16, cfg.layers * 128);
    timing.allocateVirtual("%y", ScalarType::Fp16, cfg.m * 128);
    auto fused = timing.launch(ops::buildFusedMlp(arch, cfg),
                               LaunchMode::Timing);
    baselines::CublasLtLike lt(timing);
    auto perLayer = lt.gemmEpilogue(cfg.m, 128, 128,
                                    ops::Epilogue::BiasRelu, false,
                                    "%x", "%W", "%y", "%b");
    const double libUs = perLayer.timing.timeUs * cfg.layers;
    std::printf("M=%lld, %lld layers: fused %.1f us vs cuBLASLt "
                "%.1f us -> %.2fx\n",
                (long long)cfg.m, (long long)cfg.layers,
                fused.timing.timeUs, libUs,
                libUs / fused.timing.timeUs);
    std::printf("%s\n", err < 0.05 ? "OK" : "MISMATCH");
    return err < 0.05 ? 0 : 1;
}
