/**
 * @file
 * Quickstart: the paper's Fig. 8 end to end.
 *
 * Builds the simplest complete Graphene GEMM kernel (block tiles,
 * thread tiles, a triple loop of scalar hfma MatMuls), prints the
 * Graphene IR and the generated CUDA C++, then executes the kernel on
 * the simulator and checks the result against a host reference.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "codegen/cuda_emitter.h"
#include "ir/printer.h"
#include "ops/simple_gemm.h"
#include "runtime/device.h"
#include "runtime/reference.h"
#include "support/rng.h"

using namespace graphene;

int
main()
{
    // ------------------------------------------------ 1. build the IR
    ops::SimpleGemmConfig cfg;
    cfg.m = cfg.n = cfg.k = 64;
    cfg.blockTileM = cfg.blockTileN = 32;
    cfg.threadsM = cfg.threadsN = 8;
    Kernel kernel = ops::buildSimpleGemm(cfg);

    std::printf("=== Graphene IR (paper Fig. 8) ===\n%s\n",
                printKernel(kernel).c_str());

    // --------------------------------------------- 2. generate CUDA C++
    const std::string cuda = emitCuda(kernel, GpuArch::volta());
    std::printf("=== Generated CUDA C++ ===\n%s\n", cuda.c_str());

    // ------------------------------------- 3. run on the simulated GPU
    Device dev(GpuArch::volta());
    Rng rng(42);
    std::vector<double> a(64 * 64), b(64 * 64);
    for (auto &v : a)
        v = rng.uniform(-1, 1);
    for (auto &v : b)
        v = rng.uniform(-1, 1);
    dev.upload("%A", ScalarType::Fp16, a);
    dev.upload("%B", ScalarType::Fp16, b);
    dev.upload("%C", ScalarType::Fp16, std::vector<double>(64 * 64, 0));
    auto prof = dev.launch(kernel, LaunchMode::FunctionalTimed);

    auto ref = ref::gemm(dev.download("%A"), dev.download("%B"), 64, 64,
                         64);
    const double err = ref::maxRelDiff(dev.download("%C"), ref, 1.0);
    std::printf("=== Simulation ===\n");
    std::printf("max relative error vs fp64 reference: %.4f\n", err);
    std::printf("simulated kernel time: %.2f us (%s-bound)\n",
                prof.timing.timeUs, prof.timing.boundBy.c_str());
    std::printf("%s\n", err < 0.05 ? "OK" : "MISMATCH");
    return err < 0.05 ? 0 : 1;
}
