/**
 * @file
 * Fused multi-head attention at the MLPerf BERT shape (paper Fig. 14)
 * plus the end-to-end injection experiment (Fig. 15): validates the
 * fused kernel functionally at a reduced size, then reports the
 * BERT-shaped timing against the unfused baseline and the end-to-end
 * Transformer speedups.
 */

#include <cstdio>

#include "baselines/engines.h"
#include "models/transformer.h"
#include "ops/fmha.h"
#include "runtime/reference.h"
#include "support/rng.h"

using namespace graphene;

int
main()
{
    const GpuArch &arch = GpuArch::ampere();

    // ------------------------------------------------ functional check
    ops::FmhaConfig small;
    small.batch = 1;
    small.heads = 4;
    small.seq = 128;
    const int64_t elems = small.batch * small.heads * small.seq * 64;
    Device dev(arch);
    Rng rng(3);
    for (const char *n : {"%Q", "%K", "%V"}) {
        std::vector<double> v(elems);
        for (auto &x : v)
            x = rng.uniform(-1, 1);
        dev.upload(n, ScalarType::Fp16, v);
    }
    dev.upload("%O", ScalarType::Fp16, std::vector<double>(elems, 0));
    dev.launch(ops::buildFusedFmha(arch, small), LaunchMode::Functional);

    auto q = dev.download("%Q"), k = dev.download("%K"),
         v = dev.download("%V"), o = dev.download("%O");
    double worst = 0;
    const int64_t hd = small.seq * 64;
    for (int64_t h = 0; h < small.batch * small.heads; ++h) {
        auto ref = ref::attention(
            {q.begin() + h * hd, q.begin() + (h + 1) * hd},
            {k.begin() + h * hd, k.begin() + (h + 1) * hd},
            {v.begin() + h * hd, v.begin() + (h + 1) * hd}, small.seq,
            64);
        worst = std::max(worst, ref::maxRelDiff(
            {o.begin() + h * hd, o.begin() + (h + 1) * hd}, ref, 0.5));
    }
    std::printf("fused FMHA functional check: max relative error %.4f\n",
                worst);

    // --------------------------------- Fig. 14: the MLPerf BERT shape
    ops::FmhaConfig bert; // 32 x 16 x 384 x 64
    Device tdev(arch);
    const int64_t big = bert.batch * bert.heads * bert.seq * 64;
    for (const char *n : {"%Q", "%K", "%V", "%O"})
        tdev.allocateVirtual(n, ScalarType::Fp16, big);
    auto fused = tdev.launch(ops::buildFusedFmha(arch, bert),
                             LaunchMode::Timing);
    baselines::TorchLike torch(tdev);
    tdev.resetStream();
    torch.attentionUnfused(bert.batch * bert.heads, bert.seq, 64, "%Q",
                           "%K", "%V", "%O");
    const double baseUs = tdev.streamTimeUs();
    std::printf("BERT shape: fused %.1f us vs unfused %.1f us -> "
                "%.2fx\n",
                fused.timing.timeUs, baseUs,
                baseUs / fused.timing.timeUs);

    // ------------------------------------ Fig. 15: end-to-end networks
    std::printf("\nend-to-end inference with the fused FMHA injected:\n");
    for (const auto &cfg : models::TransformerConfig::paperNetworks()) {
        auto r = models::runTransformerInference(arch, cfg);
        std::printf("  %-14s %.2fx speedup (attention was %.0f%% of "
                    "the baseline)\n",
                    r.network.c_str(), r.speedup(),
                    r.attentionSharePct);
    }
    std::printf("%s\n", worst < 0.05 ? "OK" : "MISMATCH");
    return worst < 0.05 ? 0 : 1;
}
