/**
 * @file
 * The paper's opening example (Fig. 1): an optimized warp-level data
 * movement of a 16x16 fp16 shared-memory tile into registers via the
 * ldmatrix instruction, expressed as a Graphene decomposition:
 *
 *   - the warp is tiled into 2x2 logical groups of 8 threads;
 *   - each group is assigned one 8x8 tile of the source;
 *   - each thread provides one row of its tile;
 *   - the final Move matches the pre-defined ldmatrix atomic.
 *
 * Prints the IR and the generated CUDA C++ (compare with Fig. 1c/1d),
 * then executes the kernel and verifies the exact data-to-thread
 * mapping of Fig. 1b.
 */

#include <cstdio>

#include "codegen/cuda_emitter.h"
#include "ir/printer.h"
#include "ops/ldmatrix_move.h"
#include "runtime/device.h"

using namespace graphene;

int
main()
{
    Kernel kernel = ops::buildLdmatrixMoveKernel();

    std::printf("=== Graphene IR (paper Fig. 1d) ===\n%s\n",
                printKernel(kernel).c_str());
    std::printf("=== Generated CUDA C++ (compare Fig. 1c) ===\n%s\n",
                emitCuda(kernel, GpuArch::ampere()).c_str());

    Device dev(GpuArch::ampere());
    std::vector<double> in(256);
    for (size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<double>(i % 256) * 0.25;
    dev.upload("%in", ScalarType::Fp16, in);
    dev.upload("%out", ScalarType::Fp16, std::vector<double>(256, 0));
    dev.launch(kernel, LaunchMode::Functional);
    auto out = dev.download("%out");

    // Verify Fig. 1b: thread t's value v comes from tile v/2 (arranged
    // 2x2), row t/4, columns 2*(t%4) + v%2.
    int errors = 0;
    for (int64_t t = 0; t < 32; ++t)
        for (int64_t v = 0; v < 8; ++v) {
            const int64_t g = v / 2;
            const int64_t r = 8 * (g / 2) + t / 4;
            const int64_t c = 8 * (g % 2) + 2 * (t % 4) + v % 2;
            if (out[t * 8 + v] != in[r * 16 + c])
                ++errors;
        }
    std::printf("=== Simulation ===\n");
    std::printf("data-to-thread mapping mismatches: %d / 256\n", errors);
    std::printf("thread 5 received:");
    for (int64_t v = 0; v < 8; ++v)
        std::printf(" %.2f", out[5 * 8 + v]);
    std::printf("\n%s\n", errors == 0 ? "OK" : "MISMATCH");
    return errors == 0 ? 0 : 1;
}
